#include "ontology/dewey.h"

#include <algorithm>

#include "util/string_util.h"

namespace ecdr::ontology {

// DeweyLess / DeweyCommonPrefix live in ontology/flat_dewey_pool.cc
// with the rest of the (runtime-dispatched) Dewey kernels.

std::string FormatDewey(std::span<const std::uint32_t> address) {
  if (address.empty()) return "<root>";
  std::string result;
  for (std::size_t i = 0; i < address.size(); ++i) {
    if (i > 0) result += '.';
    result += std::to_string(address[i]);
  }
  return result;
}

util::StatusOr<DeweyAddress> ParseDewey(std::string_view text) {
  DeweyAddress address;
  if (text.empty()) return address;
  for (std::string_view piece : util::Split(text, '.')) {
    std::uint32_t component = 0;
    if (!util::ParseUint32(piece, &component) || component == 0) {
      return util::InvalidArgumentError("bad Dewey component '" +
                                        std::string(piece) + "'");
    }
    address.push_back(component);
  }
  return address;
}

ConceptId DeweyResolver::Resolve(
    std::span<const std::uint32_t> address) const {
  ConceptId current = ontology_->root();
  for (std::uint32_t component : address) {
    const auto children = ontology_->children(current);
    if (component == 0 || component > children.size()) {
      return kInvalidConcept;
    }
    current = children[component - 1];
  }
  return current;
}

AddressEnumerator::AddressEnumerator(const Ontology& ontology,
                                     AddressEnumeratorOptions options)
    : ontology_(&ontology), options_(options) {
  ECDR_CHECK_GT(options_.max_addresses, 0u);
}

const std::vector<DeweyAddress>& AddressEnumerator::Addresses(ConceptId c) {
  ECDR_CHECK(ontology_->Contains(c));
  if (frozen_.load(std::memory_order_acquire)) {
    // PrecomputeAll cached every concept, so the map is immutable here.
    const auto it = cache_.find(c);
    ECDR_CHECK(it != cache_.end());
    return it->second.addresses;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return Compute(c).addresses;
}

void AddressEnumerator::PrecomputeAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ConceptId c = 0; c < ontology_->num_concepts(); ++c) Compute(c);
  // Flatten into the pool, preserving each concept's lexicographic
  // address order, so frozen-mode readers can consume raw spans.
  pool_.Clear();
  std::uint64_t total_addresses = 0;
  std::uint64_t total_components = 0;
  for (ConceptId c = 0; c < ontology_->num_concepts(); ++c) {
    const Entry& entry = cache_.find(c)->second;
    total_addresses += entry.addresses.size();
    for (const DeweyAddress& address : entry.addresses) {
      total_components += address.size();
    }
  }
  // Spans index the arena with 32-bit offsets; SNOMED-scale address
  // sets are ~3e7 components, far below the cap.
  ECDR_CHECK_LE(total_addresses, 0xFFFFFFFFull);
  ECDR_CHECK_LE(total_components, 0xFFFFFFFFull);
  pool_.spans_.reserve(total_addresses);
  pool_.components_.reserve(total_components);
  pool_.concept_first_.reserve(ontology_->num_concepts() + 1);
  for (ConceptId c = 0; c < ontology_->num_concepts(); ++c) {
    pool_.concept_first_.push_back(
        static_cast<std::uint32_t>(pool_.spans_.size()));
    for (const DeweyAddress& address : cache_.find(c)->second.addresses) {
      AddressSpan span;
      span.offset = static_cast<std::uint32_t>(pool_.components_.size());
      span.length = static_cast<std::uint32_t>(address.size());
      pool_.components_.insert(pool_.components_.end(), address.begin(),
                               address.end());
      pool_.spans_.push_back(span);
    }
  }
  pool_.concept_first_.push_back(
      static_cast<std::uint32_t>(pool_.spans_.size()));
  // Global lexicographic ranks over the whole pool, so DRC can order
  // any address subset with u32 compares (see FlatDeweyPool::ranks).
  pool_.BuildRanks();
  cache_generation_.store(NextCacheGeneration(), std::memory_order_release);
  frozen_.store(true, std::memory_order_release);
}

util::Status AddressEnumerator::AdoptPrecomputed(
    std::vector<std::uint32_t> components, std::vector<AddressSpan> spans,
    std::vector<std::uint32_t> concept_first,
    std::vector<std::uint32_t> span_ranks,
    std::vector<std::uint32_t> rank_lcp) {
  const std::uint32_t num_concepts = ontology_->num_concepts();
  if (concept_first.size() != static_cast<std::size_t>(num_concepts) + 1) {
    return util::DataLossError(
        "dewey pool covers " + std::to_string(concept_first.size()) +
        " prefix entries but the ontology has " +
        std::to_string(num_concepts) + " concepts");
  }
  if (concept_first.front() != 0 ||
      concept_first.back() != spans.size()) {
    return util::DataLossError("dewey pool prefix array does not close "
                               "over the span array");
  }
  for (std::size_t i = 1; i < concept_first.size(); ++i) {
    if (concept_first[i] < concept_first[i - 1]) {
      return util::DataLossError("dewey pool prefix array is not monotone");
    }
    if (concept_first[i] == concept_first[i - 1]) {
      return util::DataLossError("concept " + std::to_string(i - 1) +
                                 " has no addresses in the dewey pool");
    }
  }
  for (const AddressSpan& span : spans) {
    if (static_cast<std::uint64_t>(span.offset) + span.length >
        components.size()) {
      return util::DataLossError("dewey span exceeds the component arena");
    }
  }
  const bool adopt_ranks = !span_ranks.empty() || !rank_lcp.empty();
  if (adopt_ranks &&
      (span_ranks.size() != spans.size() ||
       rank_lcp.size() != spans.size())) {
    return util::DataLossError(
        "pre-spliced dewey ranks do not cover the span array");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Checked under the lock, after the (fallible) validation above: a
  // reader that raced the validation is still caught before any state
  // is dropped. Leases on a *published* enumerator never coexist with
  // Adopt/Clear — snapshot hand-off replaces the enumerator object
  // instead of mutating it — so a nonzero count here is a caller bug.
  ECDR_CHECK_EQ(live_readers(), 0);
  frozen_.store(false, std::memory_order_release);
  cache_.clear();
  pool_.Clear();
  pool_.components_ = std::move(components);
  pool_.spans_ = std::move(spans);
  pool_.concept_first_ = std::move(concept_first);
  if (adopt_ranks) {
    pool_.span_ranks_ = std::move(span_ranks);
    pool_.rank_lcp_ = std::move(rank_lcp);
  } else {
    pool_.BuildRanks();
  }
  // Materialize the per-concept cache Addresses() serves, in the pool's
  // (lexicographic) order.
  std::uint64_t total_addresses = 0;
  for (ConceptId c = 0; c < num_concepts; ++c) {
    Entry& entry = cache_[c];
    const auto concept_spans = pool_.spans(c);
    entry.addresses.reserve(concept_spans.size());
    for (const AddressSpan& span : concept_spans) {
      const auto address = pool_.components(span);
      entry.addresses.emplace_back(address.begin(), address.end());
    }
    total_addresses += concept_spans.size();
  }
  cached_addresses_.store(total_addresses, std::memory_order_relaxed);
  cache_generation_.store(NextCacheGeneration(), std::memory_order_release);
  frozen_.store(true, std::memory_order_release);
  return util::Status::Ok();
}

bool AddressEnumerator::truncated(ConceptId c) const {
  if (frozen_.load(std::memory_order_acquire)) {
    const auto it = cache_.find(c);
    return it != cache_.end() && it->second.truncated;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(c);
  return it != cache_.end() && it->second.truncated;
}

void AddressEnumerator::ClearCache() {
  // Dropping the cache dangles every Addresses() reference a live reader
  // holds — on a frozen enumerator readers don't even take the lock, so
  // this would be a silent use-after-free. Check unconditionally (the
  // tier-1 build defines NDEBUG, which would compile a DCHECK out), and
  // under the mutex so it pairs with the serialized mutation path; see
  // AdoptPrecomputed for the hand-off contract that makes a lease
  // racing this check a caller bug rather than a benign blip.
  std::lock_guard<std::mutex> lock(mutex_);
  ECDR_CHECK_EQ(live_readers(), 0);
  frozen_.store(false, std::memory_order_release);
  cache_.clear();
  pool_.Clear();
  cached_addresses_.store(0, std::memory_order_relaxed);
  cache_generation_.store(NextCacheGeneration(), std::memory_order_release);
}

std::uint64_t AddressEnumerator::NextCacheGeneration() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void AddressEnumerator::RegisterReader() {
  std::lock_guard<std::mutex> lock(mutex_);
  live_readers_.fetch_add(1, std::memory_order_acq_rel);
}

void AddressEnumerator::UnregisterReader() {
  std::lock_guard<std::mutex> lock(mutex_);
  live_readers_.fetch_sub(1, std::memory_order_acq_rel);
}

const AddressEnumerator::Entry& AddressEnumerator::Compute(ConceptId c) {
  const auto it = cache_.find(c);
  if (it != cache_.end()) return it->second;

  Entry entry;
  if (c == ontology_->root()) {
    entry.addresses.push_back({});
  } else {
    const auto parents = ontology_->parents(c);
    const auto ordinals = ontology_->parent_ordinals(c);
    // Recurse on parents first; element references in the node-based map
    // remain stable across later insertions.
    std::vector<const Entry*> parent_entries(parents.size());
    for (std::size_t i = 0; i < parents.size(); ++i) {
      parent_entries[i] = &Compute(parents[i]);
    }
    for (std::size_t i = 0; i < parents.size(); ++i) {
      entry.truncated |= parent_entries[i]->truncated;
      for (const DeweyAddress& parent_address :
           parent_entries[i]->addresses) {
        DeweyAddress address = parent_address;
        address.push_back(ordinals[i]);
        entry.addresses.push_back(std::move(address));
      }
    }
    if (entry.addresses.size() > options_.max_addresses) {
      // Keep the shortest addresses (ties broken lexicographically).
      std::stable_sort(entry.addresses.begin(), entry.addresses.end(),
                       [](const DeweyAddress& a, const DeweyAddress& b) {
                         if (a.size() != b.size()) return a.size() < b.size();
                         return DeweyLess(a, b);
                       });
      entry.addresses.resize(options_.max_addresses);
      entry.truncated = true;
    }
    std::sort(entry.addresses.begin(), entry.addresses.end(),
              [](const DeweyAddress& a, const DeweyAddress& b) {
                return DeweyLess(a, b);
              });
  }
  cached_addresses_.fetch_add(entry.addresses.size(),
                              std::memory_order_relaxed);
  return cache_.emplace(c, std::move(entry)).first->second;
}

}  // namespace ecdr::ontology
