// Fundamental identifier types for the ontology layer.

#ifndef ECDR_ONTOLOGY_TYPES_H_
#define ECDR_ONTOLOGY_TYPES_H_

#include <cstdint>

namespace ecdr::ontology {

/// Dense identifier of a concept within one Ontology (0-based).
using ConceptId = std::uint32_t;

/// Sentinel for "no concept" (failed lookups, unresolved Dewey addresses).
inline constexpr ConceptId kInvalidConcept = 0xFFFFFFFFu;

/// Distances are edge counts; this sentinel means "not reachable yet".
inline constexpr std::uint32_t kInfiniteDistance = 0xFFFFFFFFu;

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_TYPES_H_
