#include "ontology/flat_dewey_pool.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>

#if defined(__x86_64__) || defined(_M_X64)
#define ECDR_SIMD_X86 1
#include <immintrin.h>
#endif

namespace ecdr::ontology {

bool DeweyLess(std::span<const std::uint32_t> a,
               std::span<const std::uint32_t> b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

void FlatDeweyPool::BuildRanks() {
  span_ranks_.resize(spans_.size());
  std::vector<std::uint32_t> order(spans_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const std::span<const std::uint32_t> la = components(spans_[a]);
              const std::span<const std::uint32_t> lb = components(spans_[b]);
              if (DeweyLess(la, lb)) return true;
              if (DeweyLess(lb, la)) return false;
              // Addresses are globally distinct (each resolves to one
              // concept), so ties cannot occur; break by index anyway
              // to keep the permutation deterministic under any input.
              return a < b;
            });
  for (std::uint32_t rank = 0; rank < order.size(); ++rank) {
    span_ranks_[order[rank]] = rank;
  }
  rank_lcp_.resize(spans_.size());
  if (!rank_lcp_.empty()) {
    rank_lcp_[0] = 0;
    for (std::uint32_t rank = 1; rank < order.size(); ++rank) {
      rank_lcp_[rank] = static_cast<std::uint32_t>(
          DeweyCommonPrefix(components(spans_[order[rank - 1]]),
                            components(spans_[order[rank]])));
    }
  }
}

namespace {

// ---- DeweyCommonPrefix variants ------------------------------------
//
// All variants return the exact component count of the longest common
// prefix; they differ only in how many components one compare covers.

std::size_t PrefixScalar(const std::uint32_t* a, const std::uint32_t* b,
                         std::size_t limit) {
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    // Compare two components per step as one 64-bit word; on a mismatch
    // the low half of the word is the earlier component.
    while (i + 2 <= limit) {
      std::uint64_t wa;
      std::uint64_t wb;
      std::memcpy(&wa, a + i, sizeof(wa));
      std::memcpy(&wb, b + i, sizeof(wb));
      if (wa != wb) {
        return i + (static_cast<std::uint32_t>(wa) ==
                            static_cast<std::uint32_t>(wb)
                        ? 1
                        : 0);
      }
      i += 2;
    }
  }
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

#ifdef ECDR_SIMD_X86

std::size_t PrefixSse2(const std::uint32_t* a, const std::uint32_t* b,
                       std::size_t limit) {
  std::size_t i = 0;
  while (i + 4 <= limit) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi32(va, vb)));
    if (mask != 0xFFFFu) {
      // countr_one counts matching bytes before the first mismatching
      // byte; >>2 floors partial-lane matches down to whole components.
      return i + (std::countr_one(mask) >> 2);
    }
    i += 4;
  }
  return i + PrefixScalar(a + i, b + i, limit - i);
}

__attribute__((target("avx2"))) std::size_t PrefixAvx2(
    const std::uint32_t* a, const std::uint32_t* b, std::size_t limit) {
  std::size_t i = 0;
  while (i + 8 <= limit) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi32(va, vb)));
    if (mask != 0xFFFFFFFFu) {
      return i + (std::countr_one(mask) >> 2);
    }
    i += 8;
  }
  return i + PrefixSse2(a + i, b + i, limit - i);
}

#endif  // ECDR_SIMD_X86

// ---- BuildSortKeys variants ----------------------------------------

void KeysScalar(const std::uint32_t* ranks, std::uint32_t first,
                std::size_t count, std::uint64_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = (static_cast<std::uint64_t>(ranks[i]) << 32) |
             static_cast<std::uint64_t>(first + i);
  }
}

#ifdef ECDR_SIMD_X86

void KeysSse2(const std::uint32_t* ranks, std::uint32_t first,
              std::size_t count, std::uint64_t* out) {
  std::size_t i = 0;
  // Interleaving {index, rank} dwords yields the {low=index, high=rank}
  // u64 lanes directly.
  __m128i index = _mm_setr_epi32(static_cast<int>(first),
                                 static_cast<int>(first + 1), 0, 0);
  const __m128i step = _mm_setr_epi32(2, 2, 0, 0);
  for (; i + 2 <= count; i += 2) {
    const __m128i r =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ranks + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi32(index, r));
    index = _mm_add_epi32(index, step);
  }
  KeysScalar(ranks + i, first + static_cast<std::uint32_t>(i), count - i,
             out + i);
}

__attribute__((target("avx2"))) void KeysAvx2(const std::uint32_t* ranks,
                                              std::uint32_t first,
                                              std::size_t count,
                                              std::uint64_t* out) {
  std::size_t i = 0;
  __m256i index = _mm256_setr_epi64x(first, first + 1, first + 2, first + 3);
  const __m256i step = _mm256_set1_epi64x(4);
  for (; i + 4 <= count; i += 4) {
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ranks + i));
    const __m256i key = _mm256_or_si256(
        _mm256_slli_epi64(_mm256_cvtepu32_epi64(r), 32), index);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), key);
    index = _mm256_add_epi64(index, step);
  }
  KeysScalar(ranks + i, first + static_cast<std::uint32_t>(i), count - i,
             out + i);
}

#endif  // ECDR_SIMD_X86

// ---- Dispatch -------------------------------------------------------

using PrefixFn = std::size_t (*)(const std::uint32_t*, const std::uint32_t*,
                                 std::size_t);
using KeysFn = void (*)(const std::uint32_t*, std::uint32_t, std::size_t,
                        std::uint64_t*);

struct Dispatch {
  simd::Level level = simd::Level::kScalar;
  PrefixFn prefix = &PrefixScalar;
  KeysFn keys = &KeysScalar;
};

simd::Level CpuCeiling() {
#ifdef ECDR_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return simd::Level::kAvx2;
  return simd::Level::kSse2;  // Baseline on x86-64.
#else
  return simd::Level::kScalar;
#endif
}

Dispatch Select(simd::Level want) {
  const simd::Level level = std::min(want, CpuCeiling());
  Dispatch d;
  d.level = level;
#ifdef ECDR_SIMD_X86
  if (level == simd::Level::kAvx2) {
    d.prefix = &PrefixAvx2;
    d.keys = &KeysAvx2;
  } else if (level == simd::Level::kSse2) {
    d.prefix = &PrefixSse2;
    d.keys = &KeysSse2;
  }
#endif
  return d;
}

simd::Level LevelFromEnv() {
  const char* env = std::getenv("ECDR_SIMD");
  if (env == nullptr) return simd::Level::kAvx2;  // "auto": CPU-capped.
  const std::string value(env);
  if (value == "off" || value == "scalar" || value == "0") {
    return simd::Level::kScalar;
  }
  if (value == "sse2") return simd::Level::kSse2;
  if (value == "avx2") return simd::Level::kAvx2;
  return simd::Level::kAvx2;  // "auto" / "on" / unknown: best available.
}

// Resolved once at load time; ForceLevel/ResetLevel re-point it from
// test/bench setup (single-threaded by contract).
Dispatch g_dispatch = Select(LevelFromEnv());

}  // namespace

namespace simd {

Level ActiveLevel() { return g_dispatch.level; }

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void ForceLevel(Level level) { g_dispatch = Select(level); }

void ResetLevel() { g_dispatch = Select(LevelFromEnv()); }

}  // namespace simd

std::size_t DeweyCommonPrefix(std::span<const std::uint32_t> a,
                              std::span<const std::uint32_t> b) {
  return g_dispatch.prefix(a.data(), b.data(), std::min(a.size(), b.size()));
}

void BuildSortKeys(const std::uint32_t* ranks, std::uint32_t first,
                   std::size_t count, std::uint64_t* out) {
  g_dispatch.keys(ranks, first, count, out);
}

}  // namespace ecdr::ontology
