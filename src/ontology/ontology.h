// In-memory concept ontology: a single-rooted DAG of is-a edges.
//
// This is the substrate the paper's algorithms run on (Section 3.1). The
// ontology is immutable after construction (see OntologyBuilder) and is
// stored in CSR form: child lists preserve insertion order, and the
// 1-based position of a child within its parent's list is the Dewey
// component for that edge, so every root-to-concept path spells a Dewey
// address (see ontology/dewey.h).

#ifndef ECDR_ONTOLOGY_ONTOLOGY_H_
#define ECDR_ONTOLOGY_ONTOLOGY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ontology/types.h"
#include "util/macros.h"

namespace ecdr::ontology {

/// Immutable concept DAG. Construct with OntologyBuilder.
class Ontology {
 public:
  Ontology(const Ontology&) = delete;
  Ontology& operator=(const Ontology&) = delete;
  Ontology(Ontology&&) = default;
  Ontology& operator=(Ontology&&) = default;

  std::uint32_t num_concepts() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  std::uint64_t num_edges() const { return child_ids_.size(); }

  /// The unique concept with no parents.
  ConceptId root() const { return root_; }

  bool Contains(ConceptId c) const { return c < num_concepts(); }

  const std::string& name(ConceptId c) const {
    ECDR_DCHECK(Contains(c));
    return names_[c];
  }

  /// Returns kInvalidConcept when no concept has this name. Synonyms
  /// resolve to their concept (the paper's "heart attack" ==
  /// "myocardial infarction" case).
  ConceptId FindByName(std::string_view name) const;

  /// Alternative names registered for `c` (possibly empty).
  std::span<const std::string> synonyms(ConceptId c) const {
    ECDR_DCHECK(Contains(c));
    if (synonyms_.empty()) return {};
    return synonyms_[c];
  }

  std::uint32_t num_synonyms() const { return num_synonyms_; }

  /// Children in Dewey order: children(c)[i] has Dewey component i+1.
  std::span<const ConceptId> children(ConceptId c) const {
    ECDR_DCHECK(Contains(c));
    return {child_ids_.data() + child_offsets_[c],
            child_offsets_[c + 1] - child_offsets_[c]};
  }

  std::span<const ConceptId> parents(ConceptId c) const {
    ECDR_DCHECK(Contains(c));
    return {parent_ids_.data() + parent_offsets_[c],
            parent_offsets_[c + 1] - parent_offsets_[c]};
  }

  /// parent_ordinals(c)[i] is the 1-based Dewey component of the edge
  /// parents(c)[i] -> c.
  std::span<const std::uint32_t> parent_ordinals(ConceptId c) const {
    ECDR_DCHECK(Contains(c));
    return {parent_ordinals_.data() + parent_offsets_[c],
            parent_offsets_[c + 1] - parent_offsets_[c]};
  }

  /// Minimum number of edges on any root-to-c path (root has depth 0).
  std::uint32_t depth(ConceptId c) const {
    ECDR_DCHECK(Contains(c));
    return depth_[c];
  }

  std::uint32_t max_depth() const { return max_depth_; }

  /// Number of distinct root-to-c paths (== number of Dewey addresses),
  /// saturated at kPathCountSaturation for pathological DAGs.
  std::uint64_t path_count(ConceptId c) const {
    ECDR_DCHECK(Contains(c));
    return path_counts_[c];
  }

  static constexpr std::uint64_t kPathCountSaturation = 1ULL << 40;

 private:
  friend class OntologyBuilder;
  Ontology() = default;

  std::vector<std::string> names_;
  std::vector<std::vector<std::string>> synonyms_;  // Empty if none at all.
  std::uint32_t num_synonyms_ = 0;
  std::unordered_map<std::string, ConceptId> name_index_;  // Names + synonyms.
  std::vector<std::size_t> child_offsets_;  // size num_concepts + 1
  std::vector<ConceptId> child_ids_;
  std::vector<std::size_t> parent_offsets_;  // size num_concepts + 1
  std::vector<ConceptId> parent_ids_;
  std::vector<std::uint32_t> parent_ordinals_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint64_t> path_counts_;
  ConceptId root_ = kInvalidConcept;
  std::uint32_t max_depth_ = 0;
};

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_ONTOLOGY_H_
