#include "ontology/ontology.h"

namespace ecdr::ontology {

ConceptId Ontology::FindByName(std::string_view name) const {
  // unordered_map<string,...>::find with heterogeneous lookup requires a
  // transparent hash; a temporary string keeps the container simple.
  const auto it = name_index_.find(std::string(name));
  return it == name_index_.end() ? kInvalidConcept : it->second;
}

}  // namespace ecdr::ontology
