#include "ontology/ontology_builder.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace ecdr::ontology {

ConceptId OntologyBuilder::AddConcept(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<ConceptId>(names_.size() - 1);
}

util::Status OntologyBuilder::AddEdge(ConceptId parent, ConceptId child) {
  if (parent >= names_.size() || child >= names_.size()) {
    return util::InvalidArgumentError("edge endpoint is not a known concept");
  }
  if (parent == child) {
    return util::InvalidArgumentError("self edge on concept '" +
                                      names_[parent] + "'");
  }
  edges_.emplace_back(parent, child);
  return util::Status::Ok();
}

util::Status OntologyBuilder::AddSynonym(ConceptId concept_id,
                                         std::string synonym) {
  if (concept_id >= names_.size()) {
    return util::InvalidArgumentError("synonym target is not a known concept");
  }
  synonyms_.emplace_back(concept_id, std::move(synonym));
  return util::Status::Ok();
}

util::StatusOr<Ontology> OntologyBuilder::Build() && {
  const auto n = static_cast<std::uint32_t>(names_.size());
  if (n == 0) return util::InvalidArgumentError("ontology has no concepts");

  Ontology ontology;
  ontology.name_index_.reserve(n + synonyms_.size());
  for (ConceptId c = 0; c < n; ++c) {
    if (!ontology.name_index_.emplace(names_[c], c).second) {
      return util::InvalidArgumentError("duplicate concept name '" +
                                        names_[c] + "'");
    }
  }
  if (!synonyms_.empty()) {
    ontology.synonyms_.resize(n);
    for (auto& [concept_id, synonym] : synonyms_) {
      if (!ontology.name_index_.emplace(synonym, concept_id).second) {
        return util::InvalidArgumentError(
            "synonym '" + synonym + "' collides with another name or synonym");
      }
      ontology.synonyms_[concept_id].push_back(std::move(synonym));
      ++ontology.num_synonyms_;
    }
  }

  // Duplicate-edge detection.
  {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(edges_.size() * 2);
    for (const auto& [parent, child] : edges_) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(parent) << 32) | child;
      if (!seen.insert(key).second) {
        return util::InvalidArgumentError(
            "duplicate edge '" + names_[parent] + "' -> '" + names_[child] +
            "'");
      }
    }
  }

  // Child CSR in insertion order (defines Dewey ordinals).
  std::vector<std::uint32_t> child_counts(n, 0);
  std::vector<std::uint32_t> parent_counts(n, 0);
  for (const auto& [parent, child] : edges_) {
    ++child_counts[parent];
    ++parent_counts[child];
  }
  ontology.child_offsets_.assign(n + 1, 0);
  ontology.parent_offsets_.assign(n + 1, 0);
  for (ConceptId c = 0; c < n; ++c) {
    ontology.child_offsets_[c + 1] = ontology.child_offsets_[c] + child_counts[c];
    ontology.parent_offsets_[c + 1] =
        ontology.parent_offsets_[c] + parent_counts[c];
  }
  ontology.child_ids_.resize(edges_.size());
  ontology.parent_ids_.resize(edges_.size());
  ontology.parent_ordinals_.resize(edges_.size());
  {
    std::vector<std::size_t> child_fill(ontology.child_offsets_.begin(),
                                        ontology.child_offsets_.end() - 1);
    std::vector<std::size_t> parent_fill(ontology.parent_offsets_.begin(),
                                         ontology.parent_offsets_.end() - 1);
    for (const auto& [parent, child] : edges_) {
      const std::size_t child_slot = child_fill[parent]++;
      ontology.child_ids_[child_slot] = child;
      // 1-based Dewey ordinal of this child within the parent's list.
      const auto ordinal = static_cast<std::uint32_t>(
          child_slot - ontology.child_offsets_[parent] + 1);
      const std::size_t parent_slot = parent_fill[child]++;
      ontology.parent_ids_[parent_slot] = parent;
      ontology.parent_ordinals_[parent_slot] = ordinal;
    }
  }

  // Exactly one root.
  ConceptId root = kInvalidConcept;
  for (ConceptId c = 0; c < n; ++c) {
    if (parent_counts[c] == 0) {
      if (root != kInvalidConcept) {
        return util::InvalidArgumentError(
            "multiple roots: '" + names_[root] + "' and '" + names_[c] + "'");
      }
      root = c;
    }
  }
  if (root == kInvalidConcept) {
    return util::InvalidArgumentError("no root concept (graph has a cycle)");
  }
  ontology.root_ = root;

  // Acyclicity + depth + path counts in one Kahn pass over parents.
  std::vector<std::uint32_t> pending(parent_counts);
  ontology.depth_.assign(n, 0);
  ontology.path_counts_.assign(n, 0);
  ontology.path_counts_[root] = 1;
  std::queue<ConceptId> ready;
  ready.push(root);
  std::uint32_t processed = 0;
  std::uint32_t max_depth = 0;
  while (!ready.empty()) {
    const ConceptId c = ready.front();
    ready.pop();
    ++processed;
    max_depth = std::max(max_depth, ontology.depth_[c]);
    for (std::size_t i = ontology.child_offsets_[c];
         i < ontology.child_offsets_[c + 1]; ++i) {
      const ConceptId child = ontology.child_ids_[i];
      const std::uint32_t candidate_depth = ontology.depth_[c] + 1;
      if (ontology.path_counts_[child] == 0 ||
          candidate_depth < ontology.depth_[child]) {
        ontology.depth_[child] = candidate_depth;
      }
      ontology.path_counts_[child] = std::min(
          Ontology::kPathCountSaturation,
          ontology.path_counts_[child] + ontology.path_counts_[c]);
      if (--pending[child] == 0) ready.push(child);
    }
  }
  if (processed != n) {
    return util::InvalidArgumentError(
        "ontology is not a DAG or has concepts unreachable from the root");
  }
  ontology.max_depth_ = max_depth;
  ontology.names_ = std::move(names_);
  return ontology;
}

}  // namespace ecdr::ontology
