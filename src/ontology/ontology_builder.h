// Incremental construction and validation of an Ontology.
//
// Usage:
//   OntologyBuilder builder;
//   ConceptId root = builder.AddConcept("root");
//   ConceptId heart = builder.AddConcept("heart disease");
//   builder.AddEdge(root, heart);
//   util::StatusOr<Ontology> ontology = std::move(builder).Build();
//
// Build() validates the paper's structural assumptions: the graph must be
// a DAG with exactly one root from which every concept is reachable, with
// no duplicate or self edges. Edge insertion order under a given parent
// defines that parent's Dewey child ordinals.

#ifndef ECDR_ONTOLOGY_ONTOLOGY_BUILDER_H_
#define ECDR_ONTOLOGY_ONTOLOGY_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::ontology {

class OntologyBuilder {
 public:
  /// Registers a concept and returns its id. Duplicate names are detected
  /// at Build() time.
  ConceptId AddConcept(std::string name);

  /// Adds an is-a edge child -> parent (stored parent-to-child). Both ids
  /// must come from AddConcept.
  util::Status AddEdge(ConceptId parent, ConceptId child);

  /// Registers an alternative name for `concept_id`; FindByName will
  /// resolve it. Collisions with names or other synonyms are detected
  /// at Build().
  util::Status AddSynonym(ConceptId concept_id, std::string synonym);

  std::uint32_t num_concepts() const {
    return static_cast<std::uint32_t>(names_.size());
  }

  /// Validates and freezes the ontology. The builder is consumed.
  util::StatusOr<Ontology> Build() &&;

 private:
  std::vector<std::string> names_;
  std::vector<std::pair<ConceptId, ConceptId>> edges_;  // (parent, child)
  std::vector<std::pair<ConceptId, std::string>> synonyms_;
};

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_ONTOLOGY_BUILDER_H_
