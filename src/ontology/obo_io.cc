#include "ontology/obo_io.h"

#include <fstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ontology/ontology_builder.h"
#include "util/string_util.h"

namespace ecdr::ontology {

namespace {

struct OboTerm {
  std::string id;
  std::string name;
  std::vector<std::string> synonyms;
  std::vector<std::string> parents;  // is_a targets, by id.
  bool obsolete = false;
};

/// "synonym: "text" SCOPE []" -> text. Returns empty on malformed input.
std::string ParseSynonymValue(std::string_view value) {
  const auto first = value.find('"');
  if (first == std::string_view::npos) return "";
  const auto last = value.find('"', first + 1);
  if (last == std::string_view::npos) return "";
  return std::string(value.substr(first + 1, last - first - 1));
}

}  // namespace

util::StatusOr<Ontology> LoadOboOntology(const std::string& path,
                                         const OboImportOptions& options) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open '" + path + "' for reading");

  std::vector<OboTerm> terms;
  bool in_term_stanza = false;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view stripped = util::StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '!') continue;
    if (stripped.front() == '[') {
      in_term_stanza = stripped == "[Term]";
      if (in_term_stanza) terms.emplace_back();
      continue;
    }
    if (!in_term_stanza) continue;
    const auto colon = stripped.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view tag = stripped.substr(0, colon);
    std::string_view value = util::StripWhitespace(stripped.substr(colon + 1));
    // Trailing "! comment" applies to id-valued tags.
    OboTerm& term = terms.back();
    if (tag == "id") {
      term.id = std::string(value);
    } else if (tag == "name") {
      term.name = std::string(value);
    } else if (tag == "is_a") {
      const auto bang = value.find('!');
      if (bang != std::string_view::npos) {
        value = util::StripWhitespace(value.substr(0, bang));
      }
      term.parents.emplace_back(value);
    } else if (tag == "synonym") {
      const std::string synonym = ParseSynonymValue(value);
      if (!synonym.empty()) term.synonyms.push_back(synonym);
    } else if (tag == "is_obsolete") {
      term.obsolete = value == "true";
    }
  }

  OntologyBuilder builder;
  const ConceptId root = builder.AddConcept(options.virtual_root_name);
  std::unordered_map<std::string, ConceptId> by_id;
  for (const OboTerm& term : terms) {
    if (term.obsolete) continue;
    if (term.id.empty()) {
      return util::InvalidArgumentError("'" + path +
                                        "': [Term] stanza without an id");
    }
    if (by_id.contains(term.id)) {
      return util::InvalidArgumentError("'" + path + "': duplicate term id '" +
                                        term.id + "'");
    }
    by_id.emplace(term.id, builder.AddConcept(term.id));
  }
  if (by_id.empty()) {
    return util::InvalidArgumentError("'" + path + "': no usable [Term] "
                                      "stanzas");
  }
  for (const OboTerm& term : terms) {
    if (term.obsolete) continue;
    const ConceptId concept_id = by_id.at(term.id);
    if (term.parents.empty()) {
      ECDR_RETURN_IF_ERROR(builder.AddEdge(root, concept_id));
    } else {
      for (const std::string& parent : term.parents) {
        const auto it = by_id.find(parent);
        if (it == by_id.end()) {
          return util::InvalidArgumentError(
              "'" + path + "': term '" + term.id +
              "' has is_a to unknown or obsolete term '" + parent + "'");
        }
        ECDR_RETURN_IF_ERROR(builder.AddEdge(it->second, concept_id));
      }
    }
  }
  if (options.import_synonyms) {
    // Names/synonyms may collide across terms (ids never do); first
    // mention wins and later duplicates are skipped quietly.
    std::unordered_set<std::string> used;
    used.insert(options.virtual_root_name);
    for (const auto& [id, concept_id] : by_id) used.insert(id);
    for (const OboTerm& term : terms) {
      if (term.obsolete) continue;
      const ConceptId concept_id = by_id.at(term.id);
      const auto add = [&](const std::string& synonym) {
        if (synonym.empty() || !used.insert(synonym).second) return;
        ECDR_CHECK(builder.AddSynonym(concept_id, synonym).ok());
      };
      add(term.name);
      for (const std::string& synonym : term.synonyms) add(synonym);
    }
  }
  return std::move(builder).Build();
}

}  // namespace ecdr::ontology
