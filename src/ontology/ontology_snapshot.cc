#include "ontology/ontology_snapshot.h"

#include <algorithm>
#include <deque>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "ontology/flat_dewey_pool.h"
#include "ontology/ontology_builder.h"
#include "util/string_util.h"

namespace ecdr::ontology {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

void HashBytes(std::uint64_t* h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

void HashU32(std::uint64_t* h, std::uint32_t v) { HashBytes(h, &v, sizeof(v)); }

void HashU64(std::uint64_t* h, std::uint64_t v) { HashBytes(h, &v, sizeof(v)); }

void HashString(std::uint64_t* h, std::string_view s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

std::string MutationContext(std::size_t index) {
  return "mutation " + std::to_string(index) + ": ";
}

/// Validation state threaded through one batch: the DAG grows as the
/// batch applies, so later mutations see earlier adds.
struct BatchState {
  const Ontology* base;
  std::uint32_t num_concepts;                   // base + adds so far
  std::vector<std::uint8_t> retired;            // grows with adds
  std::uint32_t num_retired = 0;
  std::unordered_map<std::string, ConceptId> new_names;
  // Edges added by the batch, for duplicate detection: parent -> children.
  std::unordered_multimap<ConceptId, ConceptId> new_edges;

  bool Exists(ConceptId c) const { return c < num_concepts; }
  bool Retired(ConceptId c) const {
    return c < retired.size() && retired[c] != 0;
  }
  bool HasEdge(ConceptId parent, ConceptId child) const {
    if (parent < base->num_concepts() && child < base->num_concepts()) {
      const auto children = base->children(parent);
      if (std::find(children.begin(), children.end(), child) !=
          children.end()) {
        return true;
      }
    }
    const auto [first, last] = new_edges.equal_range(parent);
    for (auto it = first; it != last; ++it) {
      if (it->second == child) return true;
    }
    return false;
  }
};

util::Status ValidateMutation(const OntologyMutation& m, std::size_t index,
                              BatchState* state) {
  const Ontology& base = *state->base;
  switch (m.kind) {
    case OntologyMutation::Kind::kAddConcept: {
      if (m.name.empty()) {
        return util::InvalidArgumentError(MutationContext(index) +
                                          "add_concept with an empty name");
      }
      if (base.FindByName(m.name) != kInvalidConcept ||
          state->new_names.count(m.name) != 0) {
        return util::InvalidArgumentError(MutationContext(index) +
                                          "concept name '" + m.name +
                                          "' already exists");
      }
      if (m.parents.empty()) {
        return util::InvalidArgumentError(
            MutationContext(index) + "add_concept '" + m.name +
            "' needs at least one parent (the DAG has a single root)");
      }
      for (std::size_t i = 0; i < m.parents.size(); ++i) {
        const ConceptId p = m.parents[i];
        if (!state->Exists(p)) {
          return util::InvalidArgumentError(MutationContext(index) +
                                            "unknown parent concept " +
                                            std::to_string(p));
        }
        if (state->Retired(p)) {
          return util::FailedPreconditionError(
              MutationContext(index) + "parent concept " + std::to_string(p) +
              " is retired");
        }
        if (std::find(m.parents.begin(), m.parents.begin() + i, p) !=
            m.parents.begin() + i) {
          return util::InvalidArgumentError(MutationContext(index) +
                                            "duplicate parent " +
                                            std::to_string(p));
        }
      }
      const ConceptId id = state->num_concepts++;
      state->new_names.emplace(m.name, id);
      state->retired.push_back(0);
      for (const ConceptId p : m.parents) state->new_edges.emplace(p, id);
      return util::Status::Ok();
    }
    case OntologyMutation::Kind::kRetireConcept: {
      if (!state->Exists(m.target)) {
        return util::NotFoundError(MutationContext(index) +
                                   "unknown concept " +
                                   std::to_string(m.target));
      }
      if (m.target == base.root()) {
        return util::InvalidArgumentError(MutationContext(index) +
                                          "cannot retire the root concept");
      }
      if (state->Retired(m.target)) {
        return util::FailedPreconditionError(MutationContext(index) +
                                             "concept " +
                                             std::to_string(m.target) +
                                             " is already retired");
      }
      state->retired[m.target] = 1;
      ++state->num_retired;
      return util::Status::Ok();
    }
    case OntologyMutation::Kind::kAddEdge: {
      if (!state->Exists(m.parent) || !state->Exists(m.child)) {
        return util::InvalidArgumentError(MutationContext(index) +
                                          "add_edge endpoint out of range");
      }
      if (m.parent == m.child) {
        return util::InvalidArgumentError(MutationContext(index) +
                                          "self edge");
      }
      if (m.child == base.root()) {
        return util::InvalidArgumentError(
            MutationContext(index) +
            "edge into the root would create a cycle or a second root");
      }
      if (state->Retired(m.parent) || state->Retired(m.child)) {
        return util::FailedPreconditionError(MutationContext(index) +
                                             "add_edge endpoint is retired");
      }
      if (state->HasEdge(m.parent, m.child)) {
        return util::InvalidArgumentError(MutationContext(index) +
                                          "duplicate edge " +
                                          std::to_string(m.parent) + " -> " +
                                          std::to_string(m.child));
      }
      state->new_edges.emplace(m.parent, m.child);
      return util::Status::Ok();
    }
  }
  return util::InvalidArgumentError(MutationContext(index) +
                                    "unknown mutation kind");
}

bool HasStructuralMutation(std::span<const OntologyMutation> mutations) {
  for (const OntologyMutation& m : mutations) {
    if (m.kind != OntologyMutation::Kind::kRetireConcept) return true;
  }
  return false;
}

}  // namespace

std::uint64_t OntologyIdentityHash(const Ontology& dag,
                                   std::span<const std::uint8_t> retired,
                                   std::size_t max_addresses) {
  std::uint64_t h = kFnvOffset;
  HashU32(&h, dag.num_concepts());
  HashU32(&h, dag.root());
  for (ConceptId c = 0; c < dag.num_concepts(); ++c) {
    HashString(&h, dag.name(c));
    const auto synonyms = dag.synonyms(c);
    HashU64(&h, synonyms.size());
    for (const std::string& synonym : synonyms) HashString(&h, synonym);
    // Child lists in insertion order cover both the edge set and every
    // Dewey ordinal.
    const auto children = dag.children(c);
    HashU64(&h, children.size());
    for (const ConceptId child : children) HashU32(&h, child);
  }
  // Retired flags hash by set id, so an all-zero vector and an empty
  // span produce the same digest.
  for (std::size_t c = 0; c < retired.size(); ++c) {
    if (retired[c] != 0) HashU32(&h, static_cast<std::uint32_t>(c));
  }
  HashU64(&h, max_addresses);
  return h;
}

util::StatusOr<Ontology> ApplyMutations(
    const Ontology& base, std::span<const OntologyMutation> mutations,
    std::vector<std::uint8_t>* retired) {
  BatchState state;
  state.base = &base;
  state.num_concepts = base.num_concepts();
  if (retired != nullptr) {
    state.retired = *retired;
  }
  state.retired.resize(base.num_concepts(), 0);
  for (std::size_t i = 0; i < mutations.size(); ++i) {
    const util::Status status = ValidateMutation(mutations[i], i, &state);
    if (!status.ok()) return status;
  }

  // Rebuild: base concepts and edges first (edges parent-major — the
  // per-parent child order is all that defines ordinals, and it is
  // preserved), then the batch in order so its new edges append after a
  // parent's existing children.
  OntologyBuilder builder;
  for (ConceptId c = 0; c < base.num_concepts(); ++c) {
    builder.AddConcept(base.name(c));
    for (const std::string& synonym : base.synonyms(c)) {
      ECDR_RETURN_IF_ERROR(builder.AddSynonym(c, synonym));
    }
  }
  for (ConceptId p = 0; p < base.num_concepts(); ++p) {
    for (const ConceptId child : base.children(p)) {
      ECDR_RETURN_IF_ERROR(builder.AddEdge(p, child));
    }
  }
  for (const OntologyMutation& m : mutations) {
    switch (m.kind) {
      case OntologyMutation::Kind::kAddConcept: {
        const ConceptId id = builder.AddConcept(m.name);
        for (const ConceptId p : m.parents) {
          ECDR_RETURN_IF_ERROR(builder.AddEdge(p, id));
        }
        break;
      }
      case OntologyMutation::Kind::kRetireConcept:
        break;  // flag-only; recorded in `state.retired`
      case OntologyMutation::Kind::kAddEdge:
        ECDR_RETURN_IF_ERROR(builder.AddEdge(m.parent, m.child));
        break;
    }
  }
  util::StatusOr<Ontology> built = std::move(builder).Build();
  if (!built.ok()) {
    // Build()'s structural validation (acyclicity, single root) is the
    // batch's fault, not the base's.
    return util::InvalidArgumentError("mutation batch rejected: " +
                                      built.status().message());
  }
  if (retired != nullptr) *retired = std::move(state.retired);
  return built;
}

bool DistancePreservingMutations(std::span<const OntologyMutation> mutations,
                                 std::uint32_t base_num_concepts) {
  // New concepts are sinks (no pre-existing descendants) as long as
  // every explicit edge lands on a batch-new child; then no new valid
  // path connects two pre-existing concepts, so their pairwise
  // distances — and every Ddc posting — are unchanged.
  for (const OntologyMutation& m : mutations) {
    if (m.kind == OntologyMutation::Kind::kAddEdge &&
        m.child < base_num_concepts) {
      return false;
    }
  }
  return true;
}

std::shared_ptr<const OntologySnapshot> OntologySnapshot::Baseline(
    std::shared_ptr<const Ontology> dag, AddressEnumeratorOptions options,
    bool precompute) {
  auto snapshot = std::shared_ptr<OntologySnapshot>(new OntologySnapshot());
  snapshot->dag_ = std::move(dag);
  snapshot->options_ = options;
  snapshot->precompute_ = precompute;
  snapshot->addresses_ =
      std::make_shared<AddressEnumerator>(*snapshot->dag_, options);
  if (precompute) snapshot->addresses_->PrecomputeAll();
  snapshot->retired_.assign(snapshot->dag_->num_concepts(), 0);
  snapshot->identity_hash_ = OntologyIdentityHash(
      *snapshot->dag_, snapshot->retired_, options.max_addresses);
  snapshot->structural_hash_ = snapshot->identity_hash_;
  snapshot->baseline_hash_ = snapshot->identity_hash_;
  return snapshot;
}

std::shared_ptr<const OntologySnapshot> OntologySnapshot::Restore(
    std::shared_ptr<const Ontology> dag, std::vector<std::uint8_t> retired,
    std::uint64_t version, std::uint64_t baseline_hash,
    AddressEnumeratorOptions options, bool precompute) {
  auto snapshot = std::shared_ptr<OntologySnapshot>(new OntologySnapshot());
  snapshot->dag_ = std::move(dag);
  snapshot->options_ = options;
  snapshot->precompute_ = precompute;
  snapshot->addresses_ =
      std::make_shared<AddressEnumerator>(*snapshot->dag_, options);
  if (precompute) snapshot->addresses_->PrecomputeAll();
  retired.resize(snapshot->dag_->num_concepts(), 0);
  snapshot->retired_ = std::move(retired);
  snapshot->num_retired_ = static_cast<std::uint32_t>(
      std::count(snapshot->retired_.begin(), snapshot->retired_.end(), 1));
  snapshot->version_ = version;
  snapshot->identity_hash_ = OntologyIdentityHash(
      *snapshot->dag_, snapshot->retired_, options.max_addresses);
  std::vector<std::uint8_t> no_retired;
  snapshot->structural_hash_ =
      OntologyIdentityHash(*snapshot->dag_, no_retired, options.max_addresses);
  snapshot->baseline_hash_ = baseline_hash;
  return snapshot;
}

util::StatusOr<std::shared_ptr<const OntologySnapshot>> EvolveSnapshot(
    const std::shared_ptr<const OntologySnapshot>& base,
    std::span<const OntologyMutation> mutations, EvolutionStats* stats) {
  ECDR_CHECK(base != nullptr);
  EvolutionStats local;
  for (const OntologyMutation& m : mutations) {
    switch (m.kind) {
      case OntologyMutation::Kind::kAddConcept:
        ++local.added_concepts;
        local.added_edges += m.parents.size();
        break;
      case OntologyMutation::Kind::kRetireConcept:
        ++local.retired_concepts;
        break;
      case OntologyMutation::Kind::kAddEdge:
        ++local.added_edges;
        break;
    }
  }

  auto next = std::shared_ptr<OntologySnapshot>(new OntologySnapshot());
  // One version step per mutation (not per batch): WAL replay applies
  // records one at a time, and reopen must land on the same version
  // number the live engine reported.
  next->version_ = base->version_ + mutations.size();
  next->baseline_hash_ = base->baseline_hash_;
  next->options_ = base->options_;
  next->precompute_ = base->precompute_;

  if (!HasStructuralMutation(mutations)) {
    // Retire-only (possibly empty) batch: no address changes, share the
    // DAG and the frozen enumerator outright. Every cached distance —
    // pair cache, Ddq memo, Drc skeletons keyed on cache_generation —
    // stays valid.
    BatchState state;
    state.base = base->dag_.get();
    state.num_concepts = base->dag_->num_concepts();
    state.retired = base->retired_;
    state.num_retired = base->num_retired_;
    for (std::size_t i = 0; i < mutations.size(); ++i) {
      const util::Status status = ValidateMutation(mutations[i], i, &state);
      if (!status.ok()) return status;
    }
    next->dag_ = base->dag_;
    next->addresses_ = base->addresses_;
    next->retired_ = std::move(state.retired);
    next->num_retired_ = state.num_retired;
    next->identity_hash_ = OntologyIdentityHash(
        *next->dag_, next->retired_, base->options_.max_addresses);
    next->structural_hash_ = base->structural_hash_;
    next->last_evolution_ = local;
    if (stats != nullptr) *stats = next->last_evolution_;
    return std::static_pointer_cast<const OntologySnapshot>(next);
  }

  const Ontology& base_dag = *base->dag_;
  const std::uint32_t base_n = base_dag.num_concepts();
  std::vector<std::uint8_t> retired = base->retired_;
  util::StatusOr<Ontology> evolved =
      ApplyMutations(base_dag, mutations, &retired);
  if (!evolved.ok()) return evolved.status();
  auto dag = std::make_shared<const Ontology>(std::move(*evolved));
  const std::uint32_t new_n = dag->num_concepts();

  // Affected set: batch-new concepts plus explicit add_edge children,
  // closed under descendants in the NEW dag. Everything outside it
  // provably keeps its exact base address set: appends never renumber
  // an existing ordinal, so an address changes only when a root-path
  // passes through a mutated point — and every concept below a mutated
  // point is in this closure.
  std::vector<std::uint8_t> affected(new_n, 0);
  std::deque<ConceptId> frontier;
  const auto mark = [&](ConceptId c) {
    if (affected[c] == 0) {
      affected[c] = 1;
      frontier.push_back(c);
    }
  };
  for (ConceptId c = base_n; c < new_n; ++c) mark(c);
  for (const OntologyMutation& m : mutations) {
    if (m.kind == OntologyMutation::Kind::kAddEdge) mark(m.child);
  }
  while (!frontier.empty()) {
    const ConceptId c = frontier.front();
    frontier.pop_front();
    for (const ConceptId child : dag->children(c)) mark(child);
  }
  std::vector<ConceptId> affected_ids;
  for (ConceptId c = 0; c < new_n; ++c) {
    if (affected[c] != 0) affected_ids.push_back(c);
  }
  local.readdressed_concepts = affected_ids.size();
  for (const ConceptId c : affected_ids) {
    if (c < base_n) {
      ++local.readdressed_existing;
      local.invalidated_existing.push_back(c);
    }
  }

  const FlatDeweyPool* base_pool = base->addresses_->flat_pool();
  auto addresses = std::make_shared<AddressEnumerator>(*dag, base->options_);
  if (base_pool == nullptr) {
    // Base never froze (lazy mode): nothing to splice from. Fall back
    // to whatever enumeration mode the lineage runs in.
    local.full_rebuild = true;
    if (base->precompute_) addresses->PrecomputeAll();
  } else {
    // Incremental re-enumeration. Process affected concepts parents-
    // before-children (Kahn over the affected subgraph); an unaffected
    // parent's addresses come straight from the base pool. Candidate
    // generation, truncation and the final sort replicate
    // AddressEnumerator::Compute() exactly, so the assembled pool is
    // byte-identical to a cold PrecomputeAll() over `dag`.
    const std::size_t max_addresses = base->options_.max_addresses;
    std::unordered_map<ConceptId, std::uint32_t> indegree;
    for (const ConceptId c : affected_ids) {
      std::uint32_t in = 0;
      for (const ConceptId p : dag->parents(c)) in += affected[p];
      indegree.emplace(c, in);
    }
    std::deque<ConceptId> ready;
    for (const ConceptId c : affected_ids) {
      if (indegree[c] == 0) ready.push_back(c);
    }
    std::unordered_map<ConceptId, std::vector<DeweyAddress>> computed;
    computed.reserve(affected_ids.size());
    std::size_t processed = 0;
    while (!ready.empty()) {
      const ConceptId c = ready.front();
      ready.pop_front();
      ++processed;
      const auto parents = dag->parents(c);
      const auto ordinals = dag->parent_ordinals(c);
      std::vector<DeweyAddress> candidates;
      for (std::size_t i = 0; i < parents.size(); ++i) {
        const ConceptId p = parents[i];
        if (affected[p] != 0) {
          for (const DeweyAddress& parent_address : computed.at(p)) {
            DeweyAddress address = parent_address;
            address.push_back(ordinals[i]);
            candidates.push_back(std::move(address));
          }
        } else {
          for (const AddressSpan& span : base_pool->spans(p)) {
            const auto components = base_pool->components(span);
            DeweyAddress address(components.begin(), components.end());
            address.push_back(ordinals[i]);
            candidates.push_back(std::move(address));
          }
        }
      }
      if (candidates.size() > max_addresses) {
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const DeweyAddress& a, const DeweyAddress& b) {
                           if (a.size() != b.size()) {
                             return a.size() < b.size();
                           }
                           return DeweyLess(a, b);
                         });
        candidates.resize(max_addresses);
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const DeweyAddress& a, const DeweyAddress& b) {
                  return DeweyLess(a, b);
                });
      computed.emplace(c, std::move(candidates));
      for (const ConceptId child : dag->children(c)) {
        if (affected[child] != 0 && --indegree[child] == 0) {
          ready.push_back(child);
        }
      }
    }
    ECDR_CHECK_EQ(processed, affected_ids.size());

    // Assemble the successor pool concept-id-major, splicing unaffected
    // spans out of the base pool byte for byte.
    std::uint64_t total_addresses = 0;
    std::uint64_t total_components = 0;
    for (ConceptId c = 0; c < new_n; ++c) {
      if (affected[c] != 0) {
        for (const DeweyAddress& address : computed.at(c)) {
          ++total_addresses;
          total_components += address.size();
        }
      } else {
        for (const AddressSpan& span : base_pool->spans(c)) {
          ++total_addresses;
          total_components += span.length;
        }
      }
    }
    ECDR_CHECK_LE(total_addresses, 0xFFFFFFFFull);
    ECDR_CHECK_LE(total_components, 0xFFFFFFFFull);
    std::vector<std::uint32_t> components;
    std::vector<AddressSpan> spans;
    std::vector<std::uint32_t> concept_first;
    components.reserve(total_components);
    spans.reserve(total_addresses);
    concept_first.reserve(new_n + 1);
    for (ConceptId c = 0; c < new_n; ++c) {
      concept_first.push_back(static_cast<std::uint32_t>(spans.size()));
      if (affected[c] != 0) {
        for (const DeweyAddress& address : computed.at(c)) {
          AddressSpan span;
          span.offset = static_cast<std::uint32_t>(components.size());
          span.length = static_cast<std::uint32_t>(address.size());
          components.insert(components.end(), address.begin(), address.end());
          spans.push_back(span);
          local.recomputed_components += address.size();
        }
      } else {
        for (const AddressSpan& base_span : base_pool->spans(c)) {
          const auto base_components = base_pool->components(base_span);
          AddressSpan span;
          span.offset = static_cast<std::uint32_t>(components.size());
          span.length = base_span.length;
          components.insert(components.end(), base_components.begin(),
                            base_components.end());
          spans.push_back(span);
          local.reused_components += base_span.length;
        }
        ++local.reused_concepts;
      }
    }
    concept_first.push_back(static_cast<std::uint32_t>(spans.size()));

    // Splice the global ranks too: unaffected spans keep their relative
    // lexicographic order, so the evolved order is one merge of the
    // base rank order (minus the re-addressed concepts' spans) with the
    // affected concepts' freshly sorted addresses — O(addresses)
    // DeweyLess compares instead of BuildRanks' full re-sort. rank_lcp
    // entries are reused wherever both base-rank neighbours survived
    // adjacently; only merge boundaries re-run DeweyCommonPrefix.
    const auto address_of = [&](std::uint32_t s) {
      return std::span<const std::uint32_t>(
          components.data() + spans[s].offset, spans[s].length);
    };
    const std::uint32_t base_addresses =
        static_cast<std::uint32_t>(base_pool->num_addresses());
    constexpr std::uint32_t kRemoved = 0xFFFFFFFFu;
    std::vector<std::uint32_t> kept_by_base_rank(base_addresses, kRemoved);
    for (ConceptId c = 0; c < base_n; ++c) {
      if (affected[c] != 0) continue;
      const auto base_ranks = base_pool->ranks(c);
      const std::uint32_t new_first = concept_first[c];
      for (std::size_t i = 0; i < base_ranks.size(); ++i) {
        kept_by_base_rank[base_ranks[i]] =
            new_first + static_cast<std::uint32_t>(i);
      }
    }
    std::vector<std::uint32_t> fresh;
    for (const ConceptId c : affected_ids) {
      for (std::uint32_t s = concept_first[c]; s < concept_first[c + 1];
           ++s) {
        fresh.push_back(s);
      }
    }
    std::sort(fresh.begin(), fresh.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return DeweyLess(address_of(a), address_of(b));
              });
    std::vector<std::uint32_t> merged_ranks(spans.size());
    std::vector<std::uint32_t> merged_lcp(spans.size());
    const auto base_lcp = base_pool->rank_lcp();
    std::uint32_t rank = 0;
    std::uint32_t prev_span = 0;
    std::uint32_t prev_base_rank = 0;
    bool prev_kept = false;
    const auto emit = [&](std::uint32_t s, bool kept,
                          std::uint32_t base_rank) {
      merged_ranks[s] = rank;
      if (rank == 0) {
        merged_lcp[rank] = 0;
      } else if (kept && prev_kept && prev_base_rank + 1 == base_rank) {
        merged_lcp[rank] = base_lcp[base_rank];
      } else {
        merged_lcp[rank] = static_cast<std::uint32_t>(
            DeweyCommonPrefix(address_of(prev_span), address_of(s)));
      }
      prev_span = s;
      prev_kept = kept;
      prev_base_rank = base_rank;
      ++rank;
    };
    std::size_t next_fresh = 0;
    for (std::uint32_t br = 0; br < base_addresses; ++br) {
      const std::uint32_t kept_span = kept_by_base_rank[br];
      if (kept_span == kRemoved) continue;
      while (next_fresh < fresh.size() &&
             DeweyLess(address_of(fresh[next_fresh]),
                       address_of(kept_span))) {
        emit(fresh[next_fresh], /*kept=*/false, 0);
        ++next_fresh;
      }
      emit(kept_span, /*kept=*/true, br);
    }
    while (next_fresh < fresh.size()) {
      emit(fresh[next_fresh], /*kept=*/false, 0);
      ++next_fresh;
    }
    ECDR_CHECK_EQ(rank, spans.size());

    const util::Status adopted = addresses->AdoptPrecomputed(
        std::move(components), std::move(spans), std::move(concept_first),
        std::move(merged_ranks), std::move(merged_lcp));
    if (!adopted.ok()) {
      return util::InternalError("incremental dewey pool rejected: " +
                                 adopted.message());
    }
  }

  next->dag_ = std::move(dag);
  next->addresses_ = std::move(addresses);
  retired.resize(new_n, 0);
  next->retired_ = std::move(retired);
  next->num_retired_ = static_cast<std::uint32_t>(
      std::count(next->retired_.begin(), next->retired_.end(), 1));
  next->identity_hash_ = OntologyIdentityHash(
      *next->dag_, next->retired_, base->options_.max_addresses);
  std::vector<std::uint8_t> no_retired;
  next->structural_hash_ = OntologyIdentityHash(
      *next->dag_, no_retired, base->options_.max_addresses);
  next->last_evolution_ = std::move(local);
  if (stats != nullptr) *stats = next->last_evolution_;
  return std::static_pointer_cast<const OntologySnapshot>(next);
}

util::StatusOr<std::vector<OntologyMutation>> ParseMutationScript(
    std::string_view text, const Ontology& base) {
  std::vector<OntologyMutation> mutations;
  std::unordered_map<std::string, ConceptId> script_names;
  ConceptId next_id = base.num_concepts();
  const auto resolve = [&](std::string_view name) -> ConceptId {
    const ConceptId id = base.FindByName(name);
    if (id != kInvalidConcept) return id;
    const auto it = script_names.find(std::string(name));
    return it != script_names.end() ? it->second : kInvalidConcept;
  };
  std::size_t line_number = 0;
  for (std::string_view line : util::Split(text, '\n')) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    std::vector<std::string_view> tokens;
    for (std::string_view token : util::Split(line, ' ')) {
      // Split on spaces and tabs; empty tokens from runs are dropped.
      std::size_t begin = 0;
      while (begin <= token.size()) {
        const std::size_t end = token.find('\t', begin);
        const std::string_view piece =
            token.substr(begin, end == std::string_view::npos
                                    ? std::string_view::npos
                                    : end - begin);
        if (!piece.empty() && piece != "\r") tokens.push_back(piece);
        if (end == std::string_view::npos) break;
        begin = end + 1;
      }
    }
    if (tokens.empty()) continue;
    const std::string context =
        "mutation script line " + std::to_string(line_number) + ": ";
    const std::string_view op = tokens[0];
    OntologyMutation m;
    if (op == "add_concept") {
      if (tokens.size() < 3) {
        return util::InvalidArgumentError(
            context + "add_concept needs a name and at least one parent");
      }
      m.kind = OntologyMutation::Kind::kAddConcept;
      m.name = std::string(tokens[1]);
      if (resolve(m.name) != kInvalidConcept) {
        return util::InvalidArgumentError(context + "concept '" + m.name +
                                          "' already exists");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const ConceptId p = resolve(tokens[i]);
        if (p == kInvalidConcept) {
          return util::InvalidArgumentError(context + "unknown parent '" +
                                            std::string(tokens[i]) + "'");
        }
        m.parents.push_back(p);
      }
      script_names.emplace(m.name, next_id++);
    } else if (op == "retire_concept") {
      if (tokens.size() != 2) {
        return util::InvalidArgumentError(context +
                                          "retire_concept needs one name");
      }
      m.kind = OntologyMutation::Kind::kRetireConcept;
      m.target = resolve(tokens[1]);
      if (m.target == kInvalidConcept) {
        return util::InvalidArgumentError(context + "unknown concept '" +
                                          std::string(tokens[1]) + "'");
      }
    } else if (op == "add_edge") {
      if (tokens.size() != 3) {
        return util::InvalidArgumentError(context +
                                          "add_edge needs parent and child");
      }
      m.kind = OntologyMutation::Kind::kAddEdge;
      m.parent = resolve(tokens[1]);
      m.child = resolve(tokens[2]);
      if (m.parent == kInvalidConcept || m.child == kInvalidConcept) {
        return util::InvalidArgumentError(context +
                                          "unknown edge endpoint name");
      }
    } else {
      return util::InvalidArgumentError(context + "unknown op '" +
                                        std::string(op) + "'");
    }
    mutations.push_back(std::move(m));
  }
  return mutations;
}

}  // namespace ecdr::ontology
