#include "ontology/generator.h"

#include <algorithm>

#include "ontology/ontology_builder.h"
#include "util/random.h"

namespace ecdr::ontology {

util::StatusOr<Ontology> GenerateOntology(
    const OntologyGeneratorConfig& config) {
  if (config.num_concepts == 0) {
    return util::InvalidArgumentError("num_concepts must be positive");
  }
  if (config.recency_window <= 0.0 || config.recency_window > 1.0) {
    return util::InvalidArgumentError("recency_window must be in (0, 1]");
  }
  util::Rng rng(config.seed);
  OntologyBuilder builder;
  for (std::uint32_t i = 0; i < config.num_concepts; ++i) {
    builder.AddConcept(config.name_prefix + std::to_string(i));
  }

  // paths[i] tracks the Dewey address count of node i so extra parents
  // can be vetoed before they blow past the cap.
  std::vector<std::uint64_t> paths(config.num_concepts, 0);
  paths[0] = 1;  // Root.

  std::vector<ConceptId> extra_parents;
  for (ConceptId node = 1; node < config.num_concepts; ++node) {
    // Primary parent: recency-biased to deepen the hierarchy.
    ConceptId primary;
    if (rng.Bernoulli(config.recency_bias)) {
      const auto window = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(config.recency_window * node));
      primary = static_cast<ConceptId>(rng.UniformInt(node - window, node - 1));
    } else {
      primary = static_cast<ConceptId>(rng.UniformInt(0, node - 1));
    }
    util::Status status = builder.AddEdge(primary, node);
    ECDR_CHECK(status.ok());
    paths[node] = paths[primary];

    if (node >= 2 && rng.Bernoulli(config.extra_parent_prob)) {
      extra_parents.clear();
      const auto attempts = static_cast<std::uint32_t>(
          rng.UniformInt(1, std::max<std::uint32_t>(1, config.max_extra_parents)));
      for (std::uint32_t a = 0; a < attempts; ++a) {
        const auto candidate =
            static_cast<ConceptId>(rng.UniformInt(0, node - 1));
        if (candidate == primary) continue;
        if (std::find(extra_parents.begin(), extra_parents.end(), candidate) !=
            extra_parents.end()) {
          continue;
        }
        if (paths[node] + paths[candidate] > config.max_paths_per_concept) {
          continue;
        }
        extra_parents.push_back(candidate);
        paths[node] += paths[candidate];
      }
      for (ConceptId parent : extra_parents) {
        status = builder.AddEdge(parent, node);
        ECDR_CHECK(status.ok());
      }
    }
  }
  return std::move(builder).Build();
}

OntologyShapeStats ComputeShapeStats(const Ontology& ontology) {
  OntologyShapeStats stats;
  stats.num_concepts = ontology.num_concepts();
  stats.num_edges = ontology.num_edges();
  stats.max_depth = ontology.max_depth();
  std::uint32_t internal = 0;
  std::uint64_t internal_children = 0;
  std::uint32_t leaves = 0;
  double depth_sum = 0.0;
  double path_sum = 0.0;
  for (ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    const auto num_children = ontology.children(c).size();
    if (num_children > 0) {
      ++internal;
      internal_children += num_children;
    } else {
      ++leaves;
    }
    depth_sum += ontology.depth(c);
    const auto path_count = static_cast<double>(ontology.path_count(c));
    path_sum += path_count;
    stats.max_path_count = std::max(stats.max_path_count, path_count);
  }
  const auto n = static_cast<double>(ontology.num_concepts());
  stats.avg_children_internal =
      internal == 0 ? 0.0
                    : static_cast<double>(internal_children) / internal;
  stats.leaf_fraction = leaves / n;
  stats.avg_depth = depth_sum / n;
  stats.avg_path_count = path_sum / n;
  return stats;
}

}  // namespace ecdr::ontology
