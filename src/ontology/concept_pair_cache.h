// Shared cache of concept-concept shortest valid-path distances.
//
// Real workloads re-touch the same hot concepts constantly (SNOMED-CT
// concept popularity is heavily skewed), so D(ci, cj) values computed by
// one query are very likely to be needed again by another. The ontology
// is immutable for the lifetime of an engine, which makes the cached
// distances valid forever: this cache is never invalidated, only
// evicted under capacity pressure, and entries remain valid across
// every published engine snapshot (contrast with the per-engine Ddq
// memo in core/distance_cache.h, whose epochs are snapshot-scoped —
// see DESIGN.md, "Cache hierarchy" and "Snapshot lifecycle").
//
// Keys are unordered pairs: (a, b) and (b, a) share one entry keyed by
// (min, max). Sharded locks (util/lru_cache.h) keep concurrent query
// lanes from serializing; the intended pattern is one shared cache
// behind per-thread DistanceOracle / ConceptSimilarity instances.

#ifndef ECDR_ONTOLOGY_CONCEPT_PAIR_CACHE_H_
#define ECDR_ONTOLOGY_CONCEPT_PAIR_CACHE_H_

#include <cstdint>
#include <span>

#include "ontology/types.h"
#include "util/lru_cache.h"
#include "util/stats.h"

namespace ecdr::ontology {

struct ConceptPairCacheOptions {
  /// Total cached pairs; 0 disables (every lookup misses). 1M pairs
  /// costs ~64 MB upper bound — far below quadratic precomputation over
  /// a SNOMED-sized ontology.
  std::size_t capacity = 1 << 20;
  std::size_t num_shards = 64;
};

class ConceptPairCache {
 public:
  using Options = ConceptPairCacheOptions;

  explicit ConceptPairCache(Options options = {});

  /// True (filling *distance) if D(a, b) is cached; order-insensitive.
  bool Get(ConceptId a, ConceptId b, std::uint32_t* distance);

  /// Records D(a, b) == D(b, a).
  void Put(ConceptId a, ConceptId b, std::uint32_t distance);

  /// Drops every cached pair touching any concept in `concepts`
  /// (sorted or not); returns the number of entries erased. Called on
  /// ontology evolution for the concepts whose address sets changed —
  /// everything else stays warm, which is the point of incremental
  /// re-enumeration.
  std::size_t InvalidateConcepts(std::span<const ConceptId> concepts);

  util::CacheCounters counters() const { return cache_.counters(); }
  std::size_t size() const { return cache_.size(); }

 private:
  static std::uint64_t KeyOf(ConceptId a, ConceptId b) {
    const std::uint64_t lo = a < b ? a : b;
    const std::uint64_t hi = a < b ? b : a;
    return (hi << 32) | lo;
  }

  util::ShardedLruCache<std::uint64_t, std::uint32_t> cache_;
};

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_CONCEPT_PAIR_CACHE_H_
