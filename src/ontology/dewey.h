// Dewey addresses over the ontology DAG (paper Section 3.1).
//
// Every root-to-concept path is encoded as the sequence of 1-based child
// ordinals taken at each step ("Dewey Decimal Coding"); the root's address
// is the empty sequence. Because the ontology is a DAG, a concept with
// multiple parents has multiple addresses (SNOMED-CT averages 9.78
// addresses per concept). The D-Radix index (core/d_radix.h) is built
// from these address sets.

#ifndef ECDR_ONTOLOGY_DEWEY_H_
#define ECDR_ONTOLOGY_DEWEY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ontology/flat_dewey_pool.h"
#include "ontology/ontology.h"
#include "ontology/types.h"
#include "util/macros.h"
#include "util/status.h"

namespace ecdr::ontology {

/// One root-to-concept path as a sequence of 1-based child ordinals.
using DeweyAddress = std::vector<std::uint32_t>;

// DeweyLess / DeweyCommonPrefix / AddressSpan / FlatDeweyPool moved to
// ontology/flat_dewey_pool.h (included above), next to the SIMD
// kernels that serve them.

/// "1.1.2" rendering; the empty (root) address renders as "<root>".
std::string FormatDewey(std::span<const std::uint32_t> address);

/// Parses "1.1.2"; "" parses to the root (empty) address. Components must
/// be positive integers.
util::StatusOr<DeweyAddress> ParseDewey(std::string_view text);

/// Maps a Dewey address back to the concept it denotes by walking child
/// ordinals from the root. This is the FindNodeByDewey primitive of the
/// paper's InsertPath routine.
class DeweyResolver {
 public:
  explicit DeweyResolver(const Ontology& ontology) : ontology_(&ontology) {}

  /// Returns kInvalidConcept if any component is out of range.
  ConceptId Resolve(std::span<const std::uint32_t> address) const;

 private:
  const Ontology* ontology_;
};

struct AddressEnumeratorOptions {
  /// Per-concept cap on enumerated addresses. When a concept exceeds the
  /// cap, the shortest addresses are kept (shortest root-paths carry the
  /// smallest distances, so truncation can only make DRC distances
  /// conservative). The synthetic generator keeps path counts far below
  /// the default, so truncation is a safety valve, not the common case.
  std::size_t max_addresses = 4096;
};

/// Enumerates and caches the full Dewey address set of each concept,
/// sorted lexicographically (the order DRC consumes them in).
///
/// Thread safety: Addresses()/truncated() are safe to call from multiple
/// threads. While the cache is still growing they serialize on an
/// internal mutex; after PrecomputeAll() the cache is frozen (immutable)
/// and lookups are lock-free, which is the intended serving mode —
/// freeze once the ontology is final, then share one enumerator across
/// every query thread. Cached references stay valid until ClearCache(),
/// which (like construction) must not race with readers.
class AddressEnumerator {
 public:
  explicit AddressEnumerator(const Ontology& ontology,
                             AddressEnumeratorOptions options = {});

  /// Aborts (always-on) if any ReaderLease is still live: a lease holds
  /// a raw back-pointer, so destroying the enumerator first would turn
  /// the lease's release into a use-after-free. Snapshot owners (e.g.
  /// ontology::OntologySnapshot via core::EngineSnapshot) guarantee the
  /// ordering by holding the enumerator behind a shared_ptr declared
  /// before every lease.
  ~AddressEnumerator() { ECDR_CHECK_EQ(live_readers(), 0); }

  /// RAII registration of a long-lived reader (every Drc engine holds
  /// one for its lifetime). ClearCache() aborts (always-on check) while
  /// any lease is live: clearing would dangle the address references
  /// the reader may hold, and on a frozen enumerator readers are
  /// lock-free, so there is no lock that could make the race benign.
  class ReaderLease {
   public:
    ReaderLease() = default;
    /// Registration serializes on the enumerator's mutex — the same one
    /// ClearCache()/AdoptPrecomputed() hold across their live-reader
    /// check AND the clear itself — so a lease can never materialize
    /// between the check passing and the cache being dropped (the
    /// TOCTOU the old bare fetch_add left open).
    explicit ReaderLease(AddressEnumerator* enumerator)
        : enumerator_(enumerator) {
      if (enumerator_ != nullptr) enumerator_->RegisterReader();
    }
    ~ReaderLease() { Release(); }
    ReaderLease(ReaderLease&& other) noexcept
        : enumerator_(other.enumerator_) {
      other.enumerator_ = nullptr;
    }
    ReaderLease& operator=(ReaderLease&& other) noexcept {
      if (this != &other) {
        Release();
        enumerator_ = other.enumerator_;
        other.enumerator_ = nullptr;
      }
      return *this;
    }
    ReaderLease(const ReaderLease&) = delete;
    ReaderLease& operator=(const ReaderLease&) = delete;

   private:
    void Release() {
      if (enumerator_ != nullptr) {
        enumerator_->UnregisterReader();
        enumerator_ = nullptr;
      }
    }

    AddressEnumerator* enumerator_ = nullptr;
  };

  /// All addresses of `c`, lexicographically sorted. The reference stays
  /// valid until ClearCache().
  const std::vector<DeweyAddress>& Addresses(ConceptId c);

  /// Enumerates every concept's addresses and freezes the cache: all
  /// later Addresses()/truncated() calls are lock-free reads of the
  /// now-immutable cache. Costs one pass over the whole ontology. Also
  /// builds the FlatDeweyPool (see flat_pool()).
  void PrecomputeAll();

  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// The flattened address pool, or nullptr before PrecomputeAll() /
  /// after ClearCache(). Only the frozen enumerator serves spans: the
  /// arena cannot be appended to without moving it, so the pool and the
  /// growing per-concept cache cannot coexist. Returned pointers into
  /// the arena stay valid until ClearCache() (take a ReaderLease, as
  /// Drc does, to pin it).
  const FlatDeweyPool* flat_pool() const {
    return frozen() && pool_.built() ? &pool_ : nullptr;
  }

  /// Installs a FlatDeweyPool recovered from a snapshot image in place
  /// of PrecomputeAll()'s enumeration DFS — the startup saving the
  /// image's DEWEY section buys. The per-concept cache is materialized
  /// from the spans, the global ranks are rebuilt (a deterministic
  /// function of the spans, so recovered and freshly-enumerated pools
  /// rank identically), and the enumerator freezes. Replaces any
  /// existing cache; like ClearCache(), aborts while a ReaderLease is
  /// live. Fails with kDataLoss when the arrays are inconsistent (the
  /// caller's CRC passed but the encoded structure is impossible).
  /// Note: the per-concept `truncated` flag is not persisted; a
  /// restored enumerator reports truncated() == false even for sets
  /// that were capped at enumeration time. The address sets themselves
  /// — and hence every distance — are restored exactly.
  /// `span_ranks` / `rank_lcp` optionally carry pre-spliced global
  /// ranks (see FlatDeweyPool::BuildRanks for their invariants); when
  /// empty they are rebuilt with a full sort. EvolveSnapshot passes
  /// them so an incremental evolution merges the base pool's rank
  /// order in O(addresses) instead of re-sorting the whole pool.
  util::Status AdoptPrecomputed(std::vector<std::uint32_t> components,
                                std::vector<AddressSpan> spans,
                                std::vector<std::uint32_t> concept_first,
                                std::vector<std::uint32_t> span_ranks = {},
                                std::vector<std::uint32_t> rank_lcp = {});

  /// True if Addresses(c) was truncated at the cap (call after
  /// Addresses(c)).
  bool truncated(ConceptId c) const;

  /// Drops every cached entry and unfreezes. Not safe to call while any
  /// other thread may read the enumerator; aborts (always-on check, not
  /// just in debug builds) if any ReaderLease is live.
  void ClearCache();

  /// Currently registered ReaderLease count.
  std::int64_t live_readers() const {
    return live_readers_.load(std::memory_order_acquire);
  }

  /// Total addresses currently cached, across concepts.
  std::uint64_t cached_addresses() const {
    return cached_addresses_.load(std::memory_order_relaxed);
  }

  /// Identity of the current cache contents: unique across every
  /// enumerator instance in the process and re-drawn by PrecomputeAll()
  /// and ClearCache(). Callers that key cached derived state (e.g. the
  /// DRC query skeleton) on an enumerator compare this instead of the
  /// object address, which is immune to pointer-reuse ABA. Lazy
  /// Compute() growth does not bump it: existing per-concept address
  /// sets are immutable once published.
  std::uint64_t cache_generation() const {
    return cache_generation_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    std::vector<DeweyAddress> addresses;
    bool truncated = false;
  };

  /// Requires mutex_ held (entries are published under the lock; the
  /// frozen fast path never calls this).
  const Entry& Compute(ConceptId c);

  /// Lease bookkeeping. Register takes mutex_ so it is mutually ordered
  /// with the ClearCache()/AdoptPrecomputed() check-and-clear critical
  /// sections; Unregister does too, so the count a passing check read
  /// cannot grow OR shrink mid-clear (a racing release observing a
  /// cleared cache would otherwise be indistinguishable from the
  /// use-after-free the check exists to catch).
  void RegisterReader();
  void UnregisterReader();

  /// Draws a process-unique generation id (monotone atomic counter).
  static std::uint64_t NextCacheGeneration();

  const Ontology* ontology_;
  AddressEnumeratorOptions options_;
  mutable std::mutex mutex_;
  std::atomic<bool> frozen_{false};
  FlatDeweyPool pool_;
  std::unordered_map<ConceptId, Entry> cache_;
  std::atomic<std::uint64_t> cached_addresses_{0};
  std::atomic<std::int64_t> live_readers_{0};
  std::atomic<std::uint64_t> cache_generation_{NextCacheGeneration()};
};

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_DEWEY_H_
