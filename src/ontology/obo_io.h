// Importer for a pragmatic subset of the OBO flat-file format, the
// lingua franca for distributing biomedical ontologies (Gene Ontology,
// Human Phenotype Ontology, Disease Ontology, ...). This is the
// adoption path for running the library on a real ontology.
//
// Recognized content:
//
//   [Term]
//   id: GO:0008150
//   name: biological_process
//   synonym: "some synonym" EXACT []
//   is_a: GO:0003674 ! parent name
//   is_obsolete: true          # term is skipped
//
// Everything else ([Typedef] stanzas, other tags) is ignored. Because
// the library requires a single-rooted DAG and OBO files routinely have
// several roots, all parentless terms are attached under a virtual root
// concept named by `options.virtual_root_name`.

#ifndef ECDR_ONTOLOGY_OBO_IO_H_
#define ECDR_ONTOLOGY_OBO_IO_H_

#include <string>

#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::ontology {

struct OboImportOptions {
  /// Name for the virtual root introduced when the file has multiple
  /// (or zero explicit) roots.
  std::string virtual_root_name = "<obo-root>";

  /// Import `synonym:` tags as concept synonyms.
  bool import_synonyms = true;
};

/// Parses an OBO file into an Ontology. Term ids become concept names;
/// `name:` values become synonyms (they often collide across terms,
/// which ids never do). is_a references to unknown or obsolete terms
/// are reported as errors.
util::StatusOr<Ontology> LoadOboOntology(const std::string& path,
                                         const OboImportOptions& options = {});

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_OBO_IO_H_
