#include "ontology/concept_pair_cache.h"

#include <unordered_set>

namespace ecdr::ontology {

ConceptPairCache::ConceptPairCache(Options options)
    : cache_(util::ShardedLruCacheOptions{options.capacity,
                                          options.num_shards}) {}

bool ConceptPairCache::Get(ConceptId a, ConceptId b, std::uint32_t* distance) {
  return cache_.Get(KeyOf(a, b), distance);
}

void ConceptPairCache::Put(ConceptId a, ConceptId b, std::uint32_t distance) {
  cache_.Put(KeyOf(a, b), distance);
}

std::size_t ConceptPairCache::InvalidateConcepts(
    std::span<const ConceptId> concepts) {
  if (concepts.empty()) return 0;
  const std::unordered_set<ConceptId> targets(concepts.begin(),
                                              concepts.end());
  return cache_.EraseIf([&targets](std::uint64_t key) {
    return targets.count(static_cast<ConceptId>(key >> 32)) != 0 ||
           targets.count(static_cast<ConceptId>(key & 0xFFFFFFFFu)) != 0;
  });
}

}  // namespace ecdr::ontology
