#include "ontology/concept_pair_cache.h"

namespace ecdr::ontology {

ConceptPairCache::ConceptPairCache(Options options)
    : cache_(util::ShardedLruCacheOptions{options.capacity,
                                          options.num_shards}) {}

bool ConceptPairCache::Get(ConceptId a, ConceptId b, std::uint32_t* distance) {
  return cache_.Get(KeyOf(a, b), distance);
}

void ConceptPairCache::Put(ConceptId a, ConceptId b, std::uint32_t distance) {
  cache_.Put(KeyOf(a, b), distance);
}

}  // namespace ecdr::ontology
