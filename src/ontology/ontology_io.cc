#include "ontology/ontology_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "ontology/ontology_builder.h"
#include "util/binary_stream.h"
#include "util/string_util.h"

namespace ecdr::ontology {

namespace {

constexpr char kMagic[] = "ecdr-ontology-v1";
constexpr std::uint64_t kBinaryMagic = 0x31764F5244434531ULL;  // "1ECDRO v1"

// Reads the next semantic line (skipping blanks and '#' comments).
bool NextLine(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    const std::string_view stripped = util::StripWhitespace(*line);
    if (stripped.empty() || stripped.front() == '#') continue;
    *line = std::string(stripped);
    return true;
  }
  return false;
}

}  // namespace

util::Status SaveOntology(const Ontology& ontology, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open '" + path + "' for writing");
  out << kMagic << '\n';
  out << "concepts " << ontology.num_concepts() << '\n';
  for (ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    out << ontology.name(c) << '\n';
  }
  out << "edges " << ontology.num_edges() << '\n';
  for (ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    for (ConceptId child : ontology.children(c)) {
      out << c << ' ' << child << '\n';
    }
  }
  if (ontology.num_synonyms() > 0) {
    out << "synonyms " << ontology.num_synonyms() << '\n';
    for (ConceptId c = 0; c < ontology.num_concepts(); ++c) {
      for (const std::string& synonym : ontology.synonyms(c)) {
        out << c << ' ' << synonym << '\n';
      }
    }
  }
  out.flush();
  if (!out) return util::IoError("write to '" + path + "' failed");
  return util::Status::Ok();
}

util::StatusOr<Ontology> LoadOntology(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open '" + path + "' for reading");
  std::string line;
  if (!NextLine(in, &line) || line != kMagic) {
    return util::InvalidArgumentError("'" + path +
                                      "': missing ecdr-ontology-v1 header");
  }

  if (!NextLine(in, &line)) {
    return util::InvalidArgumentError("'" + path + "': missing concept count");
  }
  std::uint32_t num_concepts = 0;
  {
    const auto pieces = util::Split(line, ' ');
    if (pieces.size() != 2 || pieces[0] != "concepts" ||
        !util::ParseUint32(pieces[1], &num_concepts)) {
      return util::InvalidArgumentError("'" + path + "': bad concepts line '" +
                                        line + "'");
    }
  }

  OntologyBuilder builder;
  for (std::uint32_t i = 0; i < num_concepts; ++i) {
    // Concept names are raw lines; blank names are invalid so NextLine's
    // blank-skipping cannot hide one.
    if (!NextLine(in, &line)) {
      return util::InvalidArgumentError(
          "'" + path + "': expected " + std::to_string(num_concepts) +
          " concept names, got " + std::to_string(i));
    }
    builder.AddConcept(line);
  }

  if (!NextLine(in, &line)) {
    return util::InvalidArgumentError("'" + path + "': missing edge count");
  }
  std::uint64_t num_edges = 0;
  {
    const auto pieces = util::Split(line, ' ');
    if (pieces.size() != 2 || pieces[0] != "edges" ||
        !util::ParseUint64(pieces[1], &num_edges)) {
      return util::InvalidArgumentError("'" + path + "': bad edges line '" +
                                        line + "'");
    }
  }
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    if (!NextLine(in, &line)) {
      return util::InvalidArgumentError(
          "'" + path + "': expected " + std::to_string(num_edges) +
          " edges, got " + std::to_string(i));
    }
    const auto pieces = util::Split(line, ' ');
    std::uint32_t parent = 0;
    std::uint32_t child = 0;
    if (pieces.size() != 2 || !util::ParseUint32(pieces[0], &parent) ||
        !util::ParseUint32(pieces[1], &child)) {
      return util::InvalidArgumentError("'" + path + "': bad edge line '" +
                                        line + "'");
    }
    ECDR_RETURN_IF_ERROR(builder.AddEdge(parent, child));
  }
  // Optional synonyms section.
  if (NextLine(in, &line)) {
    const auto pieces = util::Split(line, ' ');
    std::uint32_t num_synonyms = 0;
    if (pieces.size() != 2 || pieces[0] != "synonyms" ||
        !util::ParseUint32(pieces[1], &num_synonyms)) {
      return util::InvalidArgumentError("'" + path +
                                        "': bad synonyms line '" + line + "'");
    }
    for (std::uint32_t i = 0; i < num_synonyms; ++i) {
      if (!NextLine(in, &line)) {
        return util::InvalidArgumentError(
            "'" + path + "': expected " + std::to_string(num_synonyms) +
            " synonyms, got " + std::to_string(i));
      }
      const auto space = line.find(' ');
      std::uint32_t concept_id = 0;
      if (space == std::string::npos ||
          !util::ParseUint32(std::string_view(line).substr(0, space),
                             &concept_id)) {
        return util::InvalidArgumentError("'" + path +
                                          "': bad synonym line '" + line +
                                          "'");
      }
      ECDR_RETURN_IF_ERROR(
          builder.AddSynonym(concept_id, line.substr(space + 1)));
    }
  }
  return std::move(builder).Build();
}


util::Status SaveOntologyBinary(const Ontology& ontology,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::IoError("cannot open '" + path + "' for writing");
  util::BinaryWriter writer(out);
  writer.WriteU64(kBinaryMagic);
  writer.WriteU32(ontology.num_concepts());
  for (ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    writer.WriteString(ontology.name(c));
  }
  writer.WriteU64(ontology.num_edges());
  for (ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    for (ConceptId child : ontology.children(c)) {
      writer.WriteU32(c);
      writer.WriteU32(child);
    }
  }
  writer.WriteU32(ontology.num_synonyms());
  for (ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    for (const std::string& synonym : ontology.synonyms(c)) {
      writer.WriteU32(c);
      writer.WriteString(synonym);
    }
  }
  out.flush();
  if (!writer.ok() || !out) {
    return util::IoError("write to '" + path + "' failed");
  }
  return util::Status::Ok();
}

util::StatusOr<Ontology> LoadOntologyBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open '" + path + "' for reading");
  // Clamp the allocation guard to the file's actual size: no honest
  // length prefix can exceed the bytes that follow it, so a corrupt
  // prefix fails cleanly instead of attempting a multi-GiB resize.
  util::BinaryReader reader(
      in, std::max<std::uint64_t>(64, util::StreamByteSize(in)));
  std::uint64_t magic = 0;
  ECDR_RETURN_IF_ERROR(reader.ReadU64(&magic));
  if (magic != kBinaryMagic) {
    return util::InvalidArgumentError("'" + path +
                                      "': not an ecdr binary ontology");
  }
  std::uint32_t num_concepts = 0;
  ECDR_RETURN_IF_ERROR(reader.ReadU32(&num_concepts));
  OntologyBuilder builder;
  for (std::uint32_t i = 0; i < num_concepts; ++i) {
    std::string name;
    ECDR_RETURN_IF_ERROR(reader.ReadString(&name));
    builder.AddConcept(std::move(name));
  }
  std::uint64_t num_edges = 0;
  ECDR_RETURN_IF_ERROR(reader.ReadU64(&num_edges));
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    std::uint32_t parent = 0;
    std::uint32_t child = 0;
    ECDR_RETURN_IF_ERROR(reader.ReadU32(&parent));
    ECDR_RETURN_IF_ERROR(reader.ReadU32(&child));
    ECDR_RETURN_IF_ERROR(builder.AddEdge(parent, child));
  }
  std::uint32_t num_synonyms = 0;
  ECDR_RETURN_IF_ERROR(reader.ReadU32(&num_synonyms));
  for (std::uint32_t i = 0; i < num_synonyms; ++i) {
    std::uint32_t concept_id = 0;
    std::string synonym;
    ECDR_RETURN_IF_ERROR(reader.ReadU32(&concept_id));
    ECDR_RETURN_IF_ERROR(reader.ReadString(&synonym));
    ECDR_RETURN_IF_ERROR(builder.AddSynonym(concept_id, std::move(synonym)));
  }
  return std::move(builder).Build();
}


util::StatusOr<Ontology> LoadOntologyAuto(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return util::IoError("cannot open '" + path + "' for reading");
  util::BinaryReader reader(probe);
  std::uint64_t magic = 0;
  const bool is_binary =
      reader.ReadU64(&magic).ok() && magic == kBinaryMagic;
  probe.close();
  return is_binary ? LoadOntologyBinary(path) : LoadOntology(path);
}

}  // namespace ecdr::ontology
