// Versioned, immutable ontology snapshots with incremental Dewey
// re-enumeration (DESIGN.md, "Ontology versioning & evolution").
//
// The paper builds its machinery (Dewey addresses, D-Radix, Ddc) once
// over a fixed ontology, but real ontologies evolve — GO retires terms
// and adds subtrees between releases. An OntologySnapshot packages one
// immutable version of the concept DAG together with its frozen
// AddressEnumerator / FlatDeweyPool and a version stamp, refcounted so
// in-flight searches pin the version they started on while a writer
// publishes the successor — the exact pattern core::EngineSnapshot uses
// for the corpus.
//
// Evolution is append-only on the DAG: concepts are added (never
// removed — retirement is a tombstone flag), and edges are added under
// a parent AFTER its existing children. Because a Dewey component is
// the 1-based position of a child within its parent's insertion-ordered
// child list, appends never shift an existing ordinal, so the address
// set of a concept can only change when one of its root-paths passes
// through a mutated point. EvolveSnapshot exploits this: it re-derives
// addresses only for the "affected" set (new concepts plus add-edge
// children, closed under descendants in the NEW dag) and assembles the
// successor FlatDeweyPool by copying every other concept's spans
// verbatim from the base pool. The result is byte-identical to a cold
// PrecomputeAll() over the post-mutation ontology — the invariant the
// evolution differential test holds it to.
//
// Retiring a concept changes no address and no distance: retired
// concepts keep their ids, addresses and postings so existing
// documents keep ranking identically; only NEW document writes
// referencing a retired concept are rejected. A retire-only batch
// therefore shares the base's DAG and enumerator outright (zero
// re-enumeration, full cache retention).

#ifndef ECDR_ONTOLOGY_ONTOLOGY_SNAPSHOT_H_
#define ECDR_ONTOLOGY_ONTOLOGY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ontology/dewey.h"
#include "ontology/ontology.h"
#include "ontology/types.h"
#include "util/status.h"

namespace ecdr::ontology {

/// One ontology evolution operation. Mutations apply in sequence;
/// within a batch, an add_concept's id is visible to later mutations.
struct OntologyMutation {
  enum class Kind : std::uint8_t {
    kAddConcept = 1,   // name + >= 1 parent edges (in the given order)
    kRetireConcept = 2,
    kAddEdge = 3,      // parent -> child, appended after parent's children
  };

  Kind kind = Kind::kAddConcept;
  // kAddConcept
  std::string name;
  std::vector<ConceptId> parents;
  // kRetireConcept ("concept" is a C++20 keyword, hence "target").
  ConceptId target = kInvalidConcept;
  // kAddEdge
  ConceptId parent = kInvalidConcept;
  ConceptId child = kInvalidConcept;
};

/// What one EvolveSnapshot call did — the observability and
/// cache-invalidation contract of an evolution step.
struct EvolutionStats {
  std::uint64_t added_concepts = 0;
  std::uint64_t retired_concepts = 0;
  std::uint64_t added_edges = 0;  // add_edge ops + add_concept parent edges

  /// Concepts whose address sets were recomputed (== |affected set|).
  std::uint64_t readdressed_concepts = 0;
  /// Of those, concepts that already existed in the base version — the
  /// ones whose cached pair distances / postings may have changed.
  std::uint64_t readdressed_existing = 0;
  /// Concepts whose address spans were copied verbatim from the base
  /// pool (the incremental win; == num_concepts - readdressed on the
  /// incremental path).
  std::uint64_t reused_concepts = 0;
  std::uint64_t reused_components = 0;      // component words copied
  std::uint64_t recomputed_components = 0;  // component words re-derived
  /// True when the incremental path was unavailable (base enumerator
  /// not frozen) and the successor ran a full PrecomputeAll instead.
  bool full_rebuild = false;

  /// Pre-existing concept ids whose address sets changed — exactly the
  /// keys a ConceptPairCache must drop. Empty for pure adds (a new
  /// concept cannot be cached yet) and retire-only batches.
  std::vector<ConceptId> invalidated_existing;
};

/// Immutable, refcounted, version-stamped ontology: DAG + frozen
/// address enumerator + retirement flags. Published through
/// shared_ptr<const OntologySnapshot>; holders pin the DAG and the
/// enumerator (and through it the FlatDeweyPool) for as long as they
/// hold the pointer, so a search never sees its addresses swapped out
/// from under it.
class OntologySnapshot {
 public:
  /// Version 0 over a freshly built ontology. When `precompute` is set
  /// the enumerator is frozen via PrecomputeAll() (the serving mode);
  /// otherwise it warms lazily and evolution falls back to full
  /// rebuilds.
  static std::shared_ptr<const OntologySnapshot> Baseline(
      std::shared_ptr<const Ontology> dag,
      AddressEnumeratorOptions options = {}, bool precompute = true);

  /// Restores a snapshot recovered from storage: an already-evolved DAG
  /// with its retirement flags and version/lineage stamps. The identity
  /// hash is recomputed from the DAG (callers compare it against the
  /// persisted one to detect corruption).
  static std::shared_ptr<const OntologySnapshot> Restore(
      std::shared_ptr<const Ontology> dag, std::vector<std::uint8_t> retired,
      std::uint64_t version, std::uint64_t baseline_hash,
      AddressEnumeratorOptions options, bool precompute);

  const Ontology& dag() const { return *dag_; }
  const std::shared_ptr<const Ontology>& dag_ptr() const { return dag_; }

  /// The snapshot's address enumerator (shared with Drc instances and
  /// the engine's ReaderLeases). Mutable because Addresses() may still
  /// lazily warm an unfrozen cache; frozen enumerators are effectively
  /// immutable.
  AddressEnumerator* addresses() const { return addresses_.get(); }
  const std::shared_ptr<AddressEnumerator>& addresses_ptr() const {
    return addresses_;
  }

  /// The enumeration options the lineage runs under. The address cap is
  /// part of the identity hash (addresses are a function of DAG + cap),
  /// so storage persists it alongside the hashes.
  const AddressEnumeratorOptions& options() const { return options_; }
  std::size_t max_addresses() const { return options_.max_addresses; }

  bool retired(ConceptId c) const {
    return c < retired_.size() && retired_[c] != 0;
  }
  std::span<const std::uint8_t> retired_flags() const { return retired_; }
  std::uint32_t num_retired() const { return num_retired_; }

  /// Monotone per-lineage version; Baseline() is 0, each EvolveSnapshot
  /// increments.
  std::uint64_t version() const { return version_; }

  /// Stable identity of this exact ontology state: DAG structure, child
  /// ordinals, names/synonyms, retirement flags and the address cap
  /// (addresses are a deterministic function of DAG + cap, so this
  /// covers the address sets without touching the pool). Equal hashes
  /// across processes mean equal ontologies.
  std::uint64_t identity_hash() const { return identity_hash_; }

  /// identity_hash with the retirement flags zeroed — changes only when
  /// a distance-relevant (structural) mutation lands. The engine salts
  /// its Ddq memo signatures with this, so retire-only evolution keeps
  /// every memo entry valid.
  std::uint64_t structural_hash() const { return structural_hash_; }

  /// The version-0 identity hash of this snapshot's lineage; persists
  /// through every evolution step. Storage uses it to refuse images
  /// from a foreign ontology while accepting any evolved descendant.
  std::uint64_t baseline_hash() const { return baseline_hash_; }

  /// Stats of the EvolveSnapshot call that produced this version
  /// (all-zero for a baseline).
  const EvolutionStats& last_evolution() const { return last_evolution_; }

 private:
  OntologySnapshot() = default;

  std::shared_ptr<const Ontology> dag_;
  std::shared_ptr<AddressEnumerator> addresses_;
  AddressEnumeratorOptions options_;
  bool precompute_ = true;  // enumeration mode, inherited by successors
  std::vector<std::uint8_t> retired_;  // size num_concepts, 1 = retired
  std::uint32_t num_retired_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t identity_hash_ = 0;
  std::uint64_t structural_hash_ = 0;
  std::uint64_t baseline_hash_ = 0;
  EvolutionStats last_evolution_;

  friend util::StatusOr<std::shared_ptr<const OntologySnapshot>>
  EvolveSnapshot(const std::shared_ptr<const OntologySnapshot>& base,
                 std::span<const OntologyMutation> mutations,
                 EvolutionStats* stats);
};

/// Applies `mutations` to `base` and returns the successor snapshot.
/// Structural mutations (add_concept / add_edge) rebuild the DAG via
/// OntologyBuilder — appends only, so existing ids and ordinals are
/// stable — and re-enumerate ONLY the affected concepts, splicing every
/// other concept's address spans out of the base pool; the resulting
/// FlatDeweyPool is byte-identical to a cold enumeration of the final
/// ontology. Retire-only batches share the base DAG and enumerator
/// outright. Fails (leaving `base` untouched) on invalid mutations:
/// unknown/duplicate names, unknown ids, retired or duplicate edge
/// endpoints, retiring the root or a retired concept, or a mutation
/// that would create a cycle or a second root.
util::StatusOr<std::shared_ptr<const OntologySnapshot>> EvolveSnapshot(
    const std::shared_ptr<const OntologySnapshot>& base,
    std::span<const OntologyMutation> mutations, EvolutionStats* stats);

/// Rebuilds `base` with `mutations` appended, as a plain Ontology (the
/// cold-rebuild side of the evolution differential, and the storage
/// replay path). Ids: base concepts keep theirs; the batch's
/// add_concepts get base.num_concepts(), +1, ... in order.
/// `retired` is updated in place (resized to the new concept count).
util::StatusOr<Ontology> ApplyMutations(
    const Ontology& base, std::span<const OntologyMutation> mutations,
    std::vector<std::uint8_t>* retired);

/// FNV-1a identity of (DAG + ordinals + names + synonyms + retirement +
/// address cap); see OntologySnapshot::identity_hash().
std::uint64_t OntologyIdentityHash(const Ontology& dag,
                                   std::span<const std::uint8_t> retired,
                                   std::size_t max_addresses);

/// True when `mutations` provably change no distance between
/// pre-existing concepts: every edge lands on a batch-new child, so new
/// concepts are path sinks and no new valid path connects two existing
/// concepts. The BlockPostings sidecar reuses its encoded lists exactly
/// when this holds.
bool DistancePreservingMutations(std::span<const OntologyMutation> mutations,
                                 std::uint32_t base_num_concepts);

/// Parses a mutation script against `base`. One mutation per line:
///   add_concept <name> <parent> [<parent>...]
///   retire_concept <name>
///   add_edge <parent> <child>
/// '#' starts a comment; names are whitespace-free tokens and may refer
/// to concepts added earlier in the script.
util::StatusOr<std::vector<OntologyMutation>> ParseMutationScript(
    std::string_view text, const Ontology& base);

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_ONTOLOGY_SNAPSHOT_H_
