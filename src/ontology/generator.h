// Synthetic SNOMED-CT-like ontology generation.
//
// The paper evaluates on the SNOMED-CT is-a hierarchy (296,433 concepts,
// avg 4.53 children per internal node, avg 9.78 Dewey addresses per
// concept of avg length 14.1). SNOMED-CT itself is licensed and the
// paper's MIMIC-II concept mappings are not distributed, so the benchmark
// harness generates ontologies that match those *shape* statistics:
//   - nodes are attached one at a time, so the graph is a DAG by
//     construction with node 0 as the unique root;
//   - the primary parent is drawn either uniformly (random-recursive-tree
//     behaviour, average depth ~ ln n) or from a recent window
//     (`recency_bias`), which deepens the hierarchy toward SNOMED's ~14;
//   - extra parents (`extra_parent_prob`) make it a DAG and multiply the
//     Dewey address count; candidates that would push a node's path count
//     past `max_paths_per_concept` are skipped, bounding the address
//     explosion that real ontologies also avoid.

#ifndef ECDR_ONTOLOGY_GENERATOR_H_
#define ECDR_ONTOLOGY_GENERATOR_H_

#include <cstdint>
#include <string>

#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::ontology {

struct OntologyGeneratorConfig {
  std::uint32_t num_concepts = 10'000;

  /// Probability that a node's primary parent is drawn from the most
  /// recently created `recency_window` fraction of nodes (deepens the
  /// DAG); otherwise the parent is uniform over all existing nodes.
  double recency_bias = 0.55;
  double recency_window = 0.05;

  /// Probability that a node receives extra parents beyond the primary
  /// one, and how many are attempted when it does.
  double extra_parent_prob = 0.13;
  std::uint32_t max_extra_parents = 1;

  /// Nodes whose Dewey address count would exceed this are not given the
  /// offending extra parent.
  std::uint64_t max_paths_per_concept = 128;

  std::uint64_t seed = 42;

  /// Concepts are named "<name_prefix><index>".
  std::string name_prefix = "C";
};

/// Generates a single-rooted DAG ontology per the config. Deterministic
/// in the seed.
util::StatusOr<Ontology> GenerateOntology(const OntologyGeneratorConfig& config);

/// Shape statistics used to validate generated ontologies against the
/// paper's published SNOMED-CT numbers and to report the substrate in
/// benchmark output.
struct OntologyShapeStats {
  std::uint32_t num_concepts = 0;
  std::uint64_t num_edges = 0;
  double avg_children_internal = 0.0;  // over nodes with >= 1 child
  double leaf_fraction = 0.0;
  double avg_depth = 0.0;
  std::uint32_t max_depth = 0;
  double avg_path_count = 0.0;  // Dewey addresses per concept
  double max_path_count = 0.0;
};

OntologyShapeStats ComputeShapeStats(const Ontology& ontology);

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_GENERATOR_H_
