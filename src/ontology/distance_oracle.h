// Reference implementation of the paper's semantic distances (Section 3.2).
//
// Concept-concept distance D(ci, cj): length of the shortest valid path,
// i.e. min over common ancestors a of up(ci, a) + up(cj, a), computed by
// joining ancestor distance maps — deliberately an independent
// implementation from ValidPathBfs and from DRC so the three can be
// cross-validated in tests.
//
// Document-level distances (Eqs. 1-3):
//   Ddc(d, c)    = min_{ci in d} D(ci, c)
//   Ddq(d, q)    = sum_i Ddc(d, qi)
//   Ddd(d1, d2)  = sum_{ci in d1} Ddc(d2, ci)/|C1|
//                + sum_{cj in d2} Ddc(d1, cj)/|C2|
// These use a multi-source ValidPathBfs sweep (O(|C| + |E|)), making the
// oracle fast enough to serve as the test oracle and as a strong
// exhaustive baseline.

#ifndef ECDR_ONTOLOGY_DISTANCE_ORACLE_H_
#define ECDR_ONTOLOGY_DISTANCE_ORACLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ontology/concept_pair_cache.h"
#include "ontology/ontology.h"
#include "ontology/types.h"
#include "ontology/valid_path_bfs.h"

namespace ecdr::ontology {

class DistanceOracle {
 public:
  /// `pair_cache` (optional, unowned, must outlive the oracle) memoizes
  /// ConceptDistance results across calls and across oracles — the
  /// intended sharing pattern is one cache behind per-thread oracles
  /// (the cache is thread-safe; the oracle is not).
  explicit DistanceOracle(const Ontology& ontology,
                          ConceptPairCache* pair_cache = nullptr);

  /// Shortest valid-path distance between two concepts. With a single
  /// root this is always finite.
  std::uint32_t ConceptDistance(ConceptId a, ConceptId b);

  /// Minimum number of is-a edges from `c` up to each of its ancestors
  /// (including c itself at 0). Exposed for the quadratic baseline.
  void UpDistances(ConceptId c,
                   std::unordered_map<ConceptId, std::uint32_t>* out) const;

  /// Fills dist[c] with the minimum valid-path distance from any source
  /// (kInfiniteDistance when unreachable). `dist` is resized to the
  /// concept count.
  void DistancesFromSet(std::span<const ConceptId> sources,
                        std::vector<std::uint32_t>* dist);

  /// Ddc(d, c) for a single concept. O(|C| + |E|); use DistancesFromSet
  /// for batches.
  std::uint32_t DocConceptDistance(std::span<const ConceptId> doc,
                                   ConceptId c);

  /// Ddq(d, q) — Eq. 2 (unnormalized sum over query concepts).
  std::uint64_t DocQueryDistance(std::span<const ConceptId> doc,
                                 std::span<const ConceptId> query);

  /// Ddd(d1, d2) — Eq. 3 (symmetric, normalized per side). Requires both
  /// documents non-empty.
  double DocDocDistance(std::span<const ConceptId> d1,
                        std::span<const ConceptId> d2);

 private:
  const Ontology* ontology_;
  ConceptPairCache* pair_cache_;  // Unowned; may be null.
  ValidPathBfs bfs_;
  std::vector<std::uint32_t> scratch_dist_;
};

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_DISTANCE_ORACLE_H_
