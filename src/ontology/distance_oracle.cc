#include "ontology/distance_oracle.h"

#include <algorithm>
#include <queue>

namespace ecdr::ontology {

DistanceOracle::DistanceOracle(const Ontology& ontology,
                               ConceptPairCache* pair_cache)
    : ontology_(&ontology), pair_cache_(pair_cache), bfs_(ontology) {}

void DistanceOracle::UpDistances(
    ConceptId c, std::unordered_map<ConceptId, std::uint32_t>* out) const {
  out->clear();
  std::queue<ConceptId> frontier;
  out->emplace(c, 0);
  frontier.push(c);
  while (!frontier.empty()) {
    const ConceptId current = frontier.front();
    frontier.pop();
    const std::uint32_t next_distance = out->at(current) + 1;
    for (ConceptId parent : ontology_->parents(current)) {
      if (out->emplace(parent, next_distance).second) {
        frontier.push(parent);
      }
    }
  }
}

std::uint32_t DistanceOracle::ConceptDistance(ConceptId a, ConceptId b) {
  std::uint32_t cached = 0;
  if (pair_cache_ != nullptr && pair_cache_->Get(a, b, &cached)) {
    return cached;
  }
  std::unordered_map<ConceptId, std::uint32_t> up_a;
  std::unordered_map<ConceptId, std::uint32_t> up_b;
  UpDistances(a, &up_a);
  UpDistances(b, &up_b);
  std::uint32_t best = kInfiniteDistance;
  // Join on common ancestors; iterate the smaller map.
  const auto& small = up_a.size() <= up_b.size() ? up_a : up_b;
  const auto& large = up_a.size() <= up_b.size() ? up_b : up_a;
  for (const auto& [ancestor, dist_small] : small) {
    const auto it = large.find(ancestor);
    if (it != large.end()) {
      best = std::min(best, dist_small + it->second);
    }
  }
  if (pair_cache_ != nullptr) pair_cache_->Put(a, b, best);
  return best;
}

void DistanceOracle::DistancesFromSet(std::span<const ConceptId> sources,
                                      std::vector<std::uint32_t>* dist) {
  dist->assign(ontology_->num_concepts(), kInfiniteDistance);
  bfs_.Start(sources);
  std::vector<ConceptId> visited;
  std::uint32_t level = 0;
  while (bfs_.NextLevel(&visited, &level)) {
    for (ConceptId c : visited) (*dist)[c] = level;
    visited.clear();
  }
}

std::uint32_t DistanceOracle::DocConceptDistance(
    std::span<const ConceptId> doc, ConceptId c) {
  DistancesFromSet(doc, &scratch_dist_);
  return scratch_dist_[c];
}

namespace {

std::vector<ConceptId> Distinct(std::span<const ConceptId> concepts) {
  std::vector<ConceptId> result(concepts.begin(), concepts.end());
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace

std::uint64_t DistanceOracle::DocQueryDistance(
    std::span<const ConceptId> doc, std::span<const ConceptId> query) {
  DistancesFromSet(doc, &scratch_dist_);
  std::uint64_t total = 0;
  // Queries and documents are concept *sets*: count each concept once.
  for (ConceptId q : Distinct(query)) {
    ECDR_CHECK_NE(scratch_dist_[q], kInfiniteDistance);
    total += scratch_dist_[q];
  }
  return total;
}

double DistanceOracle::DocDocDistance(std::span<const ConceptId> d1,
                                      std::span<const ConceptId> d2) {
  ECDR_CHECK(!d1.empty());
  ECDR_CHECK(!d2.empty());
  const std::vector<ConceptId> set1 = Distinct(d1);
  const std::vector<ConceptId> set2 = Distinct(d2);
  const std::uint64_t from_d1 = DocQueryDistance(set2, set1);  // each c1 to d2
  const std::uint64_t from_d2 = DocQueryDistance(set1, set2);  // each c2 to d1
  return static_cast<double>(from_d1) / static_cast<double>(set1.size()) +
         static_cast<double>(from_d2) / static_cast<double>(set2.size());
}

}  // namespace ecdr::ontology
