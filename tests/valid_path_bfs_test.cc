#include "ontology/valid_path_bfs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "ontology/distance_oracle.h"
#include "ontology/generator.h"
#include "tests/fig3_fixture.h"
#include "util/random.h"

namespace ecdr::ontology {
namespace {

using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

std::set<std::string> NamesAtLevel(const Fig3& fig3, ValidPathBfs& bfs,
                                   std::uint32_t want_level) {
  std::vector<ConceptId> visited;
  std::uint32_t level = 0;
  while (bfs.NextLevel(&visited, &level)) {
    if (level == want_level) {
      std::set<std::string> names;
      for (ConceptId c : visited) names.insert(fig3.ontology.name(c));
      return names;
    }
    visited.clear();
  }
  return {};
}

// Example 4 (Table 2): from F the first level reaches {D, H, J} — not G,
// because descending to J forbids re-ascending to G (valid-path rule).
TEST(ValidPathBfsTest, Fig3NeighborsOfF) {
  const Fig3 fig3 = MakeFig3Ontology();
  ValidPathBfs bfs(fig3.ontology);
  const std::vector<ConceptId> sources = {fig3['F']};
  bfs.Start(sources);
  EXPECT_EQ(NamesAtLevel(fig3, bfs, 1),
            (std::set<std::string>{"D", "H", "J"}));
}

TEST(ValidPathBfsTest, Fig3NeighborsOfI) {
  const Fig3 fig3 = MakeFig3Ontology();
  ValidPathBfs bfs(fig3.ontology);
  const std::vector<ConceptId> sources = {fig3['I']};
  bfs.Start(sources);
  EXPECT_EQ(NamesAtLevel(fig3, bfs, 1),
            (std::set<std::string>{"G", "M", "N"}));
}

// Example 4's second iteration from F: {A, K, L, O, P}. G is *not*
// reached from F at level 2 (the only length-2 route goes down to J and
// back up, which is invalid).
TEST(ValidPathBfsTest, Fig3SecondLevelFromF) {
  const Fig3 fig3 = MakeFig3Ontology();
  ValidPathBfs bfs(fig3.ontology);
  const std::vector<ConceptId> sources = {fig3['F']};
  bfs.Start(sources);
  EXPECT_EQ(NamesAtLevel(fig3, bfs, 2),
            (std::set<std::string>{"A", "K", "L", "O", "P"}));
}

TEST(ValidPathBfsTest, Fig3SecondLevelFromI) {
  const Fig3 fig3 = MakeFig3Ontology();
  ValidPathBfs bfs(fig3.ontology);
  const std::vector<ConceptId> sources = {fig3['I']};
  bfs.Start(sources);
  EXPECT_EQ(NamesAtLevel(fig3, bfs, 2), (std::set<std::string>{"E", "J"}));
}

// Example 3: a parallel BFS from q = {I, L, U} examines {G, M, N, R, H}
// in its second iteration (level 1).
TEST(ValidPathBfsTest, Fig3Example3UnionOfLevelOne) {
  const Fig3 fig3 = MakeFig3Ontology();
  std::set<std::string> level1;
  for (char origin : {'I', 'L', 'U'}) {
    ValidPathBfs bfs(fig3.ontology);
    const std::vector<ConceptId> sources = {fig3[origin]};
    bfs.Start(sources);
    for (const std::string& name : NamesAtLevel(fig3, bfs, 1)) {
      level1.insert(name);
    }
  }
  EXPECT_EQ(level1, (std::set<std::string>{"G", "M", "N", "R", "H"}));
}

TEST(ValidPathBfsTest, SourcesReportAtLevelZero) {
  const Fig3 fig3 = MakeFig3Ontology();
  ValidPathBfs bfs(fig3.ontology);
  const std::vector<ConceptId> sources = {fig3['F'], fig3['I']};
  bfs.Start(sources);
  EXPECT_EQ(NamesAtLevel(fig3, bfs, 0), (std::set<std::string>{"F", "I"}));
}

TEST(ValidPathBfsTest, VisitsEveryConceptExactlyOnce) {
  const Fig3 fig3 = MakeFig3Ontology();
  ValidPathBfs bfs(fig3.ontology);
  const std::vector<ConceptId> sources = {fig3['T']};
  bfs.Start(sources);
  std::vector<ConceptId> all;
  std::vector<ConceptId> visited;
  std::uint32_t level = 0;
  while (bfs.NextLevel(&visited, &level)) {
    all.insert(all.end(), visited.begin(), visited.end());
    visited.clear();
  }
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  EXPECT_EQ(all.size(), fig3.ontology.num_concepts());
}

TEST(ValidPathBfsTest, RestartWithEpochsIsClean) {
  const Fig3 fig3 = MakeFig3Ontology();
  ValidPathBfs bfs(fig3.ontology);
  const std::vector<ConceptId> first = {fig3['F']};
  bfs.Start(first);
  std::vector<ConceptId> visited;
  std::uint32_t level = 0;
  while (bfs.NextLevel(&visited, &level)) visited.clear();
  // Restart from a different source; results must match a fresh instance.
  const std::vector<ConceptId> second = {fig3['I']};
  bfs.Start(second);
  EXPECT_EQ(NamesAtLevel(fig3, bfs, 1),
            (std::set<std::string>{"G", "M", "N"}));
}

// Property: BFS report levels equal the oracle's valid-path distances on
// randomly generated DAG ontologies.
class BfsOracleAgreementTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BfsOracleAgreementTest, LevelsMatchOracleDistances) {
  OntologyGeneratorConfig config;
  config.num_concepts = 300;
  config.extra_parent_prob = 0.3;
  config.seed = GetParam();
  const auto ontology = GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  DistanceOracle oracle(*ontology);
  util::Rng rng(GetParam() * 977 + 1);

  ValidPathBfs bfs(*ontology);
  for (int trial = 0; trial < 5; ++trial) {
    const auto source =
        static_cast<ConceptId>(rng.UniformInt(0, ontology->num_concepts() - 1));
    std::vector<std::uint32_t> level_of(ontology->num_concepts(),
                                        kInfiniteDistance);
    const std::vector<ConceptId> sources = {source};
    bfs.Start(sources);
    std::vector<ConceptId> visited;
    std::uint32_t level = 0;
    while (bfs.NextLevel(&visited, &level)) {
      for (ConceptId c : visited) level_of[c] = level;
      visited.clear();
    }
    for (ConceptId c = 0; c < ontology->num_concepts(); ++c) {
      // Spot-check a subset to keep the quadratic oracle affordable.
      if ((c + source) % 17 != 0) continue;
      EXPECT_EQ(level_of[c], oracle.ConceptDistance(source, c))
          << "source=" << source << " target=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsOracleAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ecdr::ontology
