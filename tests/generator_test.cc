#include "ontology/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "corpus/generator.h"
#include "ontology/distance_oracle.h"
#include "ontology/ontology_io.h"

namespace ecdr {
namespace {

TEST(OntologyGeneratorTest, RejectsBadConfig) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 0;
  EXPECT_FALSE(ontology::GenerateOntology(config).ok());
  config.num_concepts = 10;
  config.recency_window = 0.0;
  EXPECT_FALSE(ontology::GenerateOntology(config).ok());
}

TEST(OntologyGeneratorTest, DeterministicInSeed) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 500;
  config.seed = 99;
  const auto a = ontology::GenerateOntology(config);
  const auto b = ontology::GenerateOntology(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_edges(), b->num_edges());
  for (ontology::ConceptId c = 0; c < a->num_concepts(); ++c) {
    const auto pa = a->parents(c);
    const auto pb = b->parents(c);
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
  }
  config.seed = 100;
  const auto c = ontology::GenerateOntology(config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->num_edges(), c->num_edges());
}

TEST(OntologyGeneratorTest, ShapeMatchesSnomedLikeTargets) {
  // SNOMED-CT (paper Section 6.1): ~9.78 addresses/concept of length
  // ~14.1. The generator should land in a credible neighborhood at
  // benchmark scale.
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 20'000;
  config.seed = 7;
  const auto ontology = ontology::GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  const auto stats = ontology::ComputeShapeStats(*ontology);
  EXPECT_EQ(stats.num_concepts, 20'000u);
  EXPECT_GT(stats.avg_depth, 6.0);
  EXPECT_LT(stats.avg_depth, 30.0);
  EXPECT_GT(stats.avg_path_count, 2.0);
  EXPECT_LT(stats.avg_path_count, 64.0);
  EXPECT_LE(stats.max_path_count, config.max_paths_per_concept);
  EXPECT_GT(stats.leaf_fraction, 0.3);
}

TEST(OntologyGeneratorTest, PathCapIsRespected) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 5'000;
  config.extra_parent_prob = 0.6;
  config.max_extra_parents = 4;
  config.max_paths_per_concept = 64;
  config.seed = 11;
  const auto ontology = ontology::GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  for (ontology::ConceptId c = 0; c < ontology->num_concepts(); ++c) {
    EXPECT_LE(ontology->path_count(c), 64u);
  }
}

TEST(OntologyIoTest, RoundTripPreservesStructure) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 200;
  config.seed = 21;
  const auto original = ontology::GenerateOntology(config);
  ASSERT_TRUE(original.ok());
  const std::string path = ::testing::TempDir() + "/ontology_roundtrip.txt";
  ASSERT_TRUE(ontology::SaveOntology(*original, path).ok());
  const auto loaded = ontology::LoadOntology(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_concepts(), original->num_concepts());
  EXPECT_EQ(loaded->num_edges(), original->num_edges());
  EXPECT_EQ(loaded->root(), original->root());
  for (ontology::ConceptId c = 0; c < original->num_concepts(); ++c) {
    EXPECT_EQ(loaded->name(c), original->name(c));
    EXPECT_EQ(loaded->depth(c), original->depth(c));
    const auto oc = original->children(c);
    const auto lc = loaded->children(c);
    ASSERT_EQ(oc.size(), lc.size());
    EXPECT_TRUE(std::equal(oc.begin(), oc.end(), lc.begin(), lc.end()));
  }
  std::remove(path.c_str());
}

TEST(OntologyIoTest, FailureInjection) {
  EXPECT_FALSE(ontology::LoadOntology("/nonexistent/file.txt").ok());
  const std::string path = ::testing::TempDir() + "/ontology_corrupt.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("ecdr-ontology-v1\nconcepts 2\nroot\nchild\nedges 2\n0 1\n1 0\n",
               f);  // A 2-cycle: no root, rejected at Build().
    std::fclose(f);
  }
  EXPECT_FALSE(ontology::LoadOntology(path).ok());
  std::remove(path.c_str());
}

TEST(CorpusGeneratorTest, RejectsBadConfig) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 100;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig config;
  config.num_documents = 0;
  EXPECT_FALSE(corpus::GenerateCorpus(*ontology, config).ok());
  config.num_documents = 5;
  config.cohesion = 1.5;
  EXPECT_FALSE(corpus::GenerateCorpus(*ontology, config).ok());
}

TEST(CorpusGeneratorTest, SizesTrackConfig) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 3'000;
  ontology_config.seed = 31;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig config;
  config.num_documents = 200;
  config.avg_concepts_per_doc = 40;
  config.seed = 32;
  const auto corpus = corpus::GenerateCorpus(*ontology, config);
  ASSERT_TRUE(corpus.ok());
  const auto stats = corpus::ComputeCorpusStats(*corpus);
  EXPECT_EQ(stats.num_documents, 200u);
  EXPECT_GT(stats.avg_concepts_per_document, 20.0);
  EXPECT_LT(stats.avg_concepts_per_document, 70.0);
}

TEST(CorpusGeneratorTest, CohesionConcentratesConcepts) {
  // A cohesive corpus reuses fewer distinct concepts per document
  // neighborhood than a uniform one of the same size.
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 5'000;
  ontology_config.seed = 41;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());

  corpus::CorpusGeneratorConfig cohesive;
  cohesive.num_documents = 20;
  cohesive.avg_concepts_per_doc = 30;
  cohesive.cohesion = 1.0;
  cohesive.clusters_per_doc = 2;
  cohesive.seed = 42;
  corpus::CorpusGeneratorConfig sparse = cohesive;
  sparse.cohesion = 0.0;

  const auto cohesive_corpus = corpus::GenerateCorpus(*ontology, cohesive);
  const auto sparse_corpus = corpus::GenerateCorpus(*ontology, sparse);
  ASSERT_TRUE(cohesive_corpus.ok());
  ASSERT_TRUE(sparse_corpus.ok());
  // Cohesion = concepts of one document lie close together in the
  // ontology: the mean distance from each concept to its nearest
  // same-document neighbor must be clearly smaller than under uniform
  // sampling. (This is exactly the PATIENT-vs-RADIO contrast the paper's
  // Fig. 7 asymmetry rests on.)
  ontology::DistanceOracle oracle(*ontology);
  const auto mean_nearest_neighbor = [&](const corpus::Corpus& c) {
    double total = 0.0;
    std::uint64_t count = 0;
    std::vector<std::uint32_t> dist;
    for (corpus::DocId d = 0; d < c.num_documents(); ++d) {
      const auto concepts = c.document(d).concepts();
      for (ontology::ConceptId x : concepts) {
        std::uint32_t best = ontology::kInfiniteDistance;
        for (ontology::ConceptId y : concepts) {
          if (x == y) continue;
          best = std::min(best, oracle.ConceptDistance(x, y));
        }
        if (best != ontology::kInfiniteDistance) {
          total += best;
          ++count;
        }
      }
    }
    return total / static_cast<double>(count);
  };
  EXPECT_LT(mean_nearest_neighbor(*cohesive_corpus) + 0.5,
            mean_nearest_neighbor(*sparse_corpus));
}

TEST(CorpusGeneratorTest, PresetsMatchPaperShape) {
  const auto patient = corpus::PatientLikeConfig(1.0, 1);
  EXPECT_EQ(patient.num_documents, 983u);
  EXPECT_NEAR(patient.avg_concepts_per_doc, 706.6, 1e-9);
  const auto radio = corpus::RadioLikeConfig(1.0, 1);
  EXPECT_EQ(radio.num_documents, 12373u);
  EXPECT_NEAR(radio.avg_concepts_per_doc, 125.3, 1e-9);
  const auto scaled = corpus::RadioLikeConfig(0.1, 1);
  EXPECT_EQ(scaled.num_documents, 1237u);
}

}  // namespace
}  // namespace ecdr
