#include "core/ta_ranker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/exhaustive_ranker.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "ontology/generator.h"
#include "tests/fig3_fixture.h"

namespace ecdr::core {
namespace {

using corpus::Corpus;
using corpus::Document;
using ontology::AddressEnumerator;
using ontology::ConceptId;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

TEST(TaRankerTest, MatchesExhaustiveOnFig3) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F'], fig3['R']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['I'], fig3['M']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['T'], fig3['V']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['L']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['A']})).ok());

  const index::PrecomputedPostings postings(corpus);
  TaRanker ta(corpus, postings);
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  ExhaustiveRanker exhaustive(corpus, &drc);

  const std::vector<ConceptId> query = {fig3['F'], fig3['I']};
  for (const std::uint32_t k : {1u, 2u, 3u, 5u}) {
    const auto got = ta.TopKRelevant(query, k);
    ASSERT_TRUE(got.ok());
    const auto want = exhaustive.TopKRelevant(query, k);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->size(), want->size());
    for (std::size_t i = 0; i < got->size(); ++i) {
      EXPECT_DOUBLE_EQ((*got)[i].distance, (*want)[i].distance)
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(TaRankerTest, ValidatesInput) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F']})).ok());
  const index::PrecomputedPostings postings(corpus);
  TaRanker ta(corpus, postings);
  EXPECT_FALSE(ta.TopKRelevant({}, 3).ok());
  const std::vector<ConceptId> bad = {999};
  EXPECT_FALSE(ta.TopKRelevant(bad, 3).ok());
  const std::vector<ConceptId> query = {fig3['F']};
  const auto empty = ta.TopKRelevant(query, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(TaRankerTest, EarlyTerminationScoresFewerDocuments) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 300;
  ontology_config.seed = 55;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 120;
  corpus_config.avg_concepts_per_doc = 8;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = 56;
  const auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());
  const index::PrecomputedPostings postings(*corpus);
  TaRanker ta(*corpus, postings);

  const auto queries = corpus::GenerateRdsQueries(*corpus, 5, 3, 57);
  bool any_early_stop = false;
  for (const auto& query : queries) {
    const auto results = ta.TopKRelevant(query, 3);
    ASSERT_TRUE(results.ok());
    EXPECT_EQ(results->size(), 3u);
    if (ta.last_stats().documents_scored < corpus->num_documents()) {
      any_early_stop = true;
    }
  }
  EXPECT_TRUE(any_early_stop);
}

class TaAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaAgreementTest, MatchesExhaustiveOnRandomWorlds) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 200;
  ontology_config.extra_parent_prob = 0.3;
  ontology_config.seed = GetParam();
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 50;
  corpus_config.avg_concepts_per_doc = 6;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = GetParam() + 1;
  const auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());
  const index::PrecomputedPostings postings(*corpus);
  TaRanker ta(*corpus, postings);
  AddressEnumerator enumerator(*ontology);
  Drc drc(*ontology, &enumerator);
  ExhaustiveRanker exhaustive(*corpus, &drc);

  for (const auto& query :
       corpus::GenerateRdsQueries(*corpus, 4, 4, GetParam() + 2)) {
    const auto got = ta.TopKRelevant(query, 5);
    ASSERT_TRUE(got.ok());
    const auto want = exhaustive.TopKRelevant(query, 5);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->size(), want->size());
    for (std::size_t i = 0; i < got->size(); ++i) {
      EXPECT_DOUBLE_EQ((*got)[i].distance, (*want)[i].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaAgreementTest,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

}  // namespace
}  // namespace ecdr::core
