// Full-pipeline integration test: generate -> filter -> persist (binary)
// -> reload -> engine -> RDS / SDS / weighted / expanded queries, all
// cross-checked against the exhaustive baseline. This is the "downstream
// user's first afternoon" exercised in one test.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/concept_weights.h"
#include "core/exhaustive_ranker.h"
#include "core/query_expansion.h"
#include "core/ranking_engine.h"
#include "corpus/corpus_io.h"
#include "corpus/filters.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "ontology/generator.h"
#include "ontology/ontology_io.h"

namespace ecdr {
namespace {

using core::ScoredDocument;
using ontology::ConceptId;

TEST(IntegrationTest, GeneratePersistReloadSearch) {
  // 1. Generate a mid-sized world.
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 8'000;
  ontology_config.seed = 1001;
  auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());

  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 250;
  corpus_config.avg_concepts_per_doc = 35;
  corpus_config.cohesion = 0.5;
  corpus_config.seed = 1002;
  auto raw_corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(raw_corpus.ok());

  // 2. Apply the paper's filters.
  corpus::ConceptFilterReport report;
  auto filtered = corpus::ApplyConceptFilters(
      *raw_corpus, corpus::ConceptFilterOptions{}, &report);
  ASSERT_TRUE(filtered.ok());
  ASSERT_GT(filtered->num_documents(), 200u);

  // 3. Persist both in the binary format and reload.
  const std::string ontology_path =
      ::testing::TempDir() + "/integration_ontology.bin";
  const std::string corpus_path =
      ::testing::TempDir() + "/integration_corpus.bin";
  ASSERT_TRUE(ontology::SaveOntologyBinary(*ontology, ontology_path).ok());
  ASSERT_TRUE(corpus::SaveCorpusBinary(*filtered, corpus_path).ok());

  auto engine =
      core::RankingEngine::CreateFromFiles(ontology_path, corpus_path);
  ASSERT_TRUE(engine.ok());
  core::RankingEngine& ranking = **engine;
  EXPECT_EQ(ranking.corpus().num_documents(), filtered->num_documents());

  // 4. Reference ranker over the same reloaded state.
  ontology::AddressEnumerator enumerator(ranking.ontology());
  core::Drc drc(ranking.ontology(), &enumerator);
  core::ExhaustiveRanker exhaustive(ranking.corpus(), &drc);

  const auto queries =
      corpus::GenerateRdsQueries(ranking.corpus(), 5, 4, 1003);
  for (const auto& query : queries) {
    const auto got = ranking.FindRelevant(query, 8);
    ASSERT_TRUE(got.ok());
    const auto want = exhaustive.TopKRelevant(query, 8);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->size(), want->size());
    for (std::size_t i = 0; i < got->size(); ++i) {
      EXPECT_DOUBLE_EQ((*got)[i].distance, (*want)[i].distance);
    }
  }

  // 5. SDS through the engine.
  const auto similar = ranking.FindSimilar(7, 5);
  ASSERT_TRUE(similar.ok());
  EXPECT_EQ((*similar)[0].id, 7u);
  EXPECT_DOUBLE_EQ((*similar)[0].distance, 0.0);

  // 6. Expanded, weighted query through the engine.
  core::QueryExpansionOptions expansion;
  expansion.radius = 2;
  const auto expanded =
      core::ExpandQuery(ranking.ontology(), queries[0], expansion);
  ASSERT_TRUE(expanded.ok());
  EXPECT_GT(expanded->size(), queries[0].size());
  const auto weighted_got = ranking.FindRelevantWeighted(*expanded, 8);
  ASSERT_TRUE(weighted_got.ok());
  const auto weighted_want = exhaustive.TopKRelevantWeighted(*expanded, 8);
  ASSERT_TRUE(weighted_want.ok());
  ASSERT_EQ(weighted_got->size(), weighted_want->size());
  for (std::size_t i = 0; i < weighted_got->size(); ++i) {
    EXPECT_NEAR((*weighted_got)[i].distance, (*weighted_want)[i].distance,
                1e-9);
  }

  // 7. Live insertion: a near-duplicate of document 7 lands next to it.
  std::vector<ConceptId> clone(
      ranking.corpus().document(7).concepts().begin(),
      ranking.corpus().document(7).concepts().end());
  clone.pop_back();
  const auto added = ranking.AddDocument(std::move(clone));
  ASSERT_TRUE(added.ok());
  const auto after = ranking.FindSimilar(7, 2);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 2u);
  EXPECT_EQ((*after)[1].id, *added);

  std::remove(ontology_path.c_str());
  std::remove(corpus_path.c_str());
}

TEST(IntegrationTest, SimulatedIoLatencyDoesNotChangeResults) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 500;
  ontology_config.seed = 1101;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 60;
  corpus_config.avg_concepts_per_doc = 8;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = 1102;
  const auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());
  index::InvertedIndex index(*corpus);
  ontology::AddressEnumerator enumerator(*ontology);
  core::Drc drc(*ontology, &enumerator);

  core::KndsOptions plain_options;
  core::Knds plain(*corpus, index, &drc, plain_options);
  core::KndsOptions io_options;
  io_options.simulated_postings_access_seconds = 2e-6;
  core::Knds with_io(*corpus, index, &drc, io_options);

  for (const auto& query :
       corpus::GenerateRdsQueries(*corpus, 4, 3, 1103)) {
    const auto a = plain.SearchRds(query, 5);
    const auto b = with_io.SearchRds(query, 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_DOUBLE_EQ((*a)[i].distance, (*b)[i].distance);
    }
  }
}

TEST(IntegrationTest, ProgressiveOutputOnRandomWorlds) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 600;
  ontology_config.seed = 1201;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 80;
  corpus_config.avg_concepts_per_doc = 10;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = 1202;
  const auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());
  index::InvertedIndex index(*corpus);
  ontology::AddressEnumerator enumerator(*ontology);
  core::Drc drc(*ontology, &enumerator);
  core::Knds knds(*corpus, index, &drc);

  std::vector<ScoredDocument> streamed;
  knds.set_progress_callback(
      [&](const ScoredDocument& scored) { streamed.push_back(scored); });

  for (const auto& query :
       corpus::GenerateRdsQueries(*corpus, 4, 4, 1203)) {
    streamed.clear();
    const auto results = knds.SearchRds(query, 6);
    ASSERT_TRUE(results.ok());
    // Stream = final results, each exactly once, nondecreasing distance.
    ASSERT_EQ(streamed.size(), results->size());
    for (std::size_t i = 0; i + 1 < streamed.size(); ++i) {
      EXPECT_LE(streamed[i].distance, streamed[i + 1].distance);
    }
    std::set<corpus::DocId> streamed_ids;
    for (const auto& scored : streamed) {
      EXPECT_TRUE(streamed_ids.insert(scored.id).second);
    }
    for (const auto& result : *results) {
      EXPECT_TRUE(streamed_ids.contains(result.id));
    }
  }
}

}  // namespace
}  // namespace ecdr
