// Crash-safety harness for the storage subsystem (DESIGN.md,
// "Durability & recovery"): WAL round-trips, snapshot-image
// round-trips, tombstone/update lifecycle, compaction bit-identity,
// kill-recover differentials over 20 seeds, and a seeded crash-point
// sweep that injects an io fault at every operation index and proves
// each recovered store is bit-identical to an ephemeral engine rebuilt
// from the durable prefix of the workload.
//
// The bit-identity bar is deliberate: recovery does not get a
// tolerance. A recovered engine must return byte-for-byte the results
// of an engine that never crashed, because the serving layer's
// differential tests hold the HTTP path to the same standard.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/ranking_engine.h"
#include "corpus/corpus.h"
#include "corpus/document.h"
#include "ontology/generator.h"
#include "storage/env.h"
#include "storage/image.h"
#include "storage/store.h"
#include "storage/wal.h"
#include "util/fault_injector.h"

namespace ecdr {
namespace {

ontology::Ontology MakeOntology(std::uint64_t seed) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 120 + (seed % 4) * 40;
  config.extra_parent_prob = 0.15 * (seed % 3);
  config.seed = seed;
  auto ontology = ontology::GenerateOntology(config);
  EXPECT_TRUE(ontology.ok());
  return std::move(ontology).value();
}

// One logical document-lifecycle operation; a workload is a vector of
// these, applied identically to durable and ephemeral engines so their
// states can be compared bit-for-bit.
struct Op {
  enum Kind { kAdd, kDelete, kUpdate };
  Kind kind = kAdd;
  corpus::DocId target = corpus::kInvalidDoc;  // delete/update
  std::vector<ontology::ConceptId> concepts;   // add/update
};

std::vector<ontology::ConceptId> RandomConcepts(std::mt19937_64& rng,
                                                std::uint32_t num_concepts) {
  std::uniform_int_distribution<std::uint32_t> size_dist(1, 8);
  std::uniform_int_distribution<std::uint32_t> id_dist(0, num_concepts - 1);
  std::vector<ontology::ConceptId> concepts(size_dist(rng));
  for (auto& c : concepts) c = id_dist(rng);
  std::sort(concepts.begin(), concepts.end());
  concepts.erase(std::unique(concepts.begin(), concepts.end()),
                 concepts.end());
  return concepts;
}

/// A deterministic mixed workload: mostly adds, with deletes and
/// in-place updates of random still-live earlier documents.
std::vector<Op> MakeWorkload(std::uint64_t seed, std::uint32_t num_concepts,
                             std::size_t count) {
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  std::vector<Op> ops;
  std::vector<corpus::DocId> live;
  corpus::DocId next_id = 0;
  std::uniform_int_distribution<int> kind_dist(0, 9);
  while (ops.size() < count) {
    const int roll = kind_dist(rng);
    if (roll < 6 || live.size() < 2) {
      ops.push_back(Op{Op::kAdd, corpus::kInvalidDoc,
                       RandomConcepts(rng, num_concepts)});
      live.push_back(next_id++);
      continue;
    }
    std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
    const std::size_t at = pick(rng);
    if (roll < 8) {
      ops.push_back(Op{Op::kDelete, live[at], {}});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    } else {
      ops.push_back(
          Op{Op::kUpdate, live[at], RandomConcepts(rng, num_concepts)});
    }
  }
  return ops;
}

/// Applies ops in order until the first failure; returns how many were
/// acknowledged. On a fault-free engine every op must succeed.
std::size_t ApplyOps(core::RankingEngine* engine, const std::vector<Op>& ops,
                     bool expect_all_ok) {
  std::size_t acked = 0;
  for (const Op& op : ops) {
    util::Status status = util::Status::Ok();
    switch (op.kind) {
      case Op::kAdd: {
        auto added = engine->AddDocument(op.concepts);
        status = added.status();
        break;
      }
      case Op::kDelete:
        status = engine->DeleteDocument(op.target);
        break;
      case Op::kUpdate:
        status = engine->UpdateDocument(op.target, op.concepts);
        break;
    }
    if (!status.ok()) {
      EXPECT_FALSE(expect_all_ok) << status.ToString();
      return acked;
    }
    ++acked;
  }
  return acked;
}

std::unique_ptr<core::RankingEngine> MakeEphemeral(
    std::uint64_t seed, core::RankingEngineOptions options = {}) {
  return core::RankingEngine::Create(MakeOntology(seed), std::move(options));
}

/// Corpus equality at the byte level: same slots, same concepts, same
/// tombstones. (Segment layout may differ — compaction is allowed to
/// re-segment — so only logical per-document state compares.)
void ExpectSameDocuments(const corpus::Corpus& a, const corpus::Corpus& b) {
  ASSERT_EQ(a.num_documents(), b.num_documents());
  EXPECT_EQ(a.num_tombstones(), b.num_tombstones());
  for (corpus::DocId d = 0; d < a.num_documents(); ++d) {
    const auto left = a.document(d).concepts();
    const auto right = b.document(d).concepts();
    ASSERT_TRUE(std::equal(left.begin(), left.end(), right.begin(),
                           right.end()))
        << "document " << d << " differs";
  }
}

/// Bitwise search equality over a deterministic probe set: a handful
/// of RDS queries plus SDS from every live document.
void ExpectSameSearchResults(core::RankingEngine* a, core::RankingEngine* b,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed * 31 + 17);
  const std::uint32_t num_concepts = a->ontology().num_concepts();
  for (int q = 0; q < 8; ++q) {
    const std::vector<ontology::ConceptId> query =
        RandomConcepts(rng, num_concepts);
    const auto left = a->FindRelevant(query, 10);
    const auto right = b->FindRelevant(query, 10);
    ASSERT_EQ(left.ok(), right.ok());
    if (!left.ok()) continue;
    ASSERT_EQ(left->size(), right->size()) << "query " << q;
    for (std::size_t i = 0; i < left->size(); ++i) {
      EXPECT_EQ((*left)[i].id, (*right)[i].id) << "query " << q;
      EXPECT_EQ((*left)[i].distance, (*right)[i].distance) << "query " << q;
      EXPECT_EQ((*left)[i].error_bound, (*right)[i].error_bound);
    }
  }
  const corpus::Corpus& corpus = a->corpus();
  for (corpus::DocId d = 0; d < corpus.num_documents(); ++d) {
    const auto left = a->FindSimilar(d, 5);
    const auto right = b->FindSimilar(d, 5);
    ASSERT_EQ(left.ok(), right.ok()) << "doc " << d;
    if (!left.ok()) {
      EXPECT_TRUE(corpus.IsDeleted(d));
      continue;
    }
    ASSERT_EQ(left->size(), right->size());
    for (std::size_t i = 0; i < left->size(); ++i) {
      EXPECT_EQ((*left)[i].id, (*right)[i].id) << "doc " << d;
      EXPECT_EQ((*left)[i].distance, (*right)[i].distance) << "doc " << d;
    }
  }
}

// ---------------------------------------------------------------------------
// WAL framing

std::vector<storage::WalRecord> SampleWalRecords() {
  std::vector<storage::WalRecord> records;
  records.push_back({storage::WalOp::kAddDocument, 1, corpus::kInvalidDoc,
                     {1, 5, 9}, {}});
  records.push_back({storage::WalOp::kAddDocument, 2, corpus::kInvalidDoc,
                     {0}, {}});
  records.push_back({storage::WalOp::kUpdateDocument, 3, 0, {2, 3}, {}});
  records.push_back({storage::WalOp::kDeleteDocument, 4, 1, {}, {}});
  return records;
}

void ExpectSameRecords(const storage::WalRecord& a,
                       const storage::WalRecord& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.lsn, b.lsn);
  EXPECT_EQ(a.doc, b.doc);
  EXPECT_EQ(a.concepts, b.concepts);
}

TEST(WalTest, EncodeReplayRoundTrip) {
  std::string log;
  for (const auto& record : SampleWalRecords()) {
    log += storage::EncodeWalRecord(record);
  }
  const storage::WalReplayResult replay = storage::ReplayWal(log, 0);
  EXPECT_FALSE(replay.tail_dropped);
  EXPECT_EQ(replay.valid_bytes, log.size());
  const auto expected = SampleWalRecords();
  ASSERT_EQ(replay.records.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ExpectSameRecords(replay.records[i], expected[i]);
  }
}

TEST(WalTest, MinLsnSkipsRecordsAnImageAlreadyCaptured) {
  std::string log;
  for (const auto& record : SampleWalRecords()) {
    log += storage::EncodeWalRecord(record);
  }
  const storage::WalReplayResult replay = storage::ReplayWal(log, 2);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].lsn, 3u);
  EXPECT_EQ(replay.records[1].lsn, 4u);
  EXPECT_FALSE(replay.tail_dropped);
}

TEST(WalTest, TruncationAtEveryByteYieldsAValidPrefix) {
  const auto expected = SampleWalRecords();
  std::string log;
  std::vector<std::size_t> boundaries{0};
  for (const auto& record : expected) {
    log += storage::EncodeWalRecord(record);
    boundaries.push_back(log.size());
  }
  for (std::size_t len = 0; len <= log.size(); ++len) {
    const storage::WalReplayResult replay =
        storage::ReplayWal(std::string_view(log).substr(0, len), 0);
    // The number of whole records in the prefix.
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= len) {
      ++whole;
    }
    ASSERT_EQ(replay.records.size(), whole) << "prefix " << len;
    for (std::size_t i = 0; i < whole; ++i) {
      ExpectSameRecords(replay.records[i], expected[i]);
    }
    EXPECT_EQ(replay.valid_bytes, boundaries[whole]) << "prefix " << len;
    EXPECT_EQ(replay.tail_dropped, len != boundaries[whole]);
  }
}

TEST(WalTest, BitFlipAtEveryByteNeverYieldsAForeignRecord) {
  const auto expected = SampleWalRecords();
  std::string log;
  for (const auto& record : expected) {
    log += storage::EncodeWalRecord(record);
  }
  for (std::size_t at = 0; at < log.size(); ++at) {
    std::string mutated = log;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
    const storage::WalReplayResult replay = storage::ReplayWal(mutated, 0);
    // Whatever survives must be an exact prefix of the original
    // records — corruption may shorten the log, never alter it.
    ASSERT_LE(replay.records.size(), expected.size()) << "flip at " << at;
    for (std::size_t i = 0; i < replay.records.size(); ++i) {
      ExpectSameRecords(replay.records[i], expected[i]);
    }
    EXPECT_LT(replay.records.size(), expected.size()) << "flip at " << at;
  }
}

// ---------------------------------------------------------------------------
// Snapshot images

TEST(ImageTest, RoundTripPreservesCorpusIndexAndMeta) {
  const ontology::Ontology ontology = MakeOntology(3);
  corpus::Corpus corpus(ontology);
  std::mt19937_64 rng(99);
  for (int d = 0; d < 20; ++d) {
    ASSERT_TRUE(corpus
                    .AddDocument(corpus::Document(
                        RandomConcepts(rng, ontology.num_concepts())))
                    .ok());
  }
  ASSERT_TRUE(corpus.DeleteDocument(7).ok());
  index::ShardedIndex index(corpus);

  storage::FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("/db").ok());
  storage::ImageMeta meta;
  meta.generation = 42;
  meta.last_lsn = 21;
  const auto path = storage::WriteImage(env, "/db", meta, corpus, index,
                                        /*dewey=*/nullptr);
  ASSERT_TRUE(path.ok()) << path.status().ToString();

  auto loaded = storage::LoadImage(env, *path, ontology);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta.generation, 42u);
  EXPECT_EQ(loaded->meta.last_lsn, 21u);
  EXPECT_FALSE(loaded->has_dewey);
  ExpectSameDocuments(loaded->corpus, corpus);
  EXPECT_TRUE(loaded->corpus.IsDeleted(7));
}

TEST(ImageTest, CommittedImageSurvivesCrashButUnsyncedTmpDoesNot) {
  const ontology::Ontology ontology = MakeOntology(1);
  corpus::Corpus corpus(ontology);
  ASSERT_TRUE(corpus.AddDocument(corpus::Document({0, 1})).ok());
  index::ShardedIndex index(corpus);

  storage::FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("/db").ok());
  storage::ImageMeta meta;
  meta.generation = 1;
  const auto path =
      storage::WriteImage(env, "/db", meta, corpus, index, nullptr);
  ASSERT_TRUE(path.ok());
  env.SimulateCrash();  // The commit protocol synced everything.
  auto loaded = storage::LoadImage(env, *path, ontology);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDocuments(loaded->corpus, corpus);
}

// ---------------------------------------------------------------------------
// DocumentStore recovery

TEST(DocumentStoreTest, SyncedOpsSurviveACrashUnsyncedOpsDoNot) {
  const ontology::Ontology ontology = MakeOntology(2);
  storage::FaultyEnv env;
  storage::StoreOptions options;
  options.data_dir = "/db";
  options.env = &env;

  auto store = storage::DocumentStore::Open(options, ontology);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->LogAdd(corpus::Document({0, 1})).ok());
  ASSERT_TRUE((*store)->LogAdd(corpus::Document({1, 2})).ok());
  ASSERT_TRUE((*store)->SyncWal().ok());
  // Logged but never synced: a crash forgets it, as it was never
  // acknowledged to any caller.
  ASSERT_TRUE((*store)->LogAdd(corpus::Document({0, 2})).ok());
  store->reset();
  env.SimulateCrash();

  auto reopened = storage::DocumentStore::Open(options, ontology);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->stats().records_replayed, 2u);
  EXPECT_EQ((*reopened)->stats().last_lsn, 2u);
  corpus::Corpus recovered = (*reopened)->TakeRecoveredCorpus();
  ASSERT_EQ(recovered.num_documents(), 2u);
  EXPECT_EQ(recovered.document(0).concepts().size(), 2u);
}

TEST(DocumentStoreTest, CheckpointRotatesWalAndBootSkipsReplay) {
  const ontology::Ontology ontology = MakeOntology(2);
  storage::FaultyEnv env;
  storage::StoreOptions options;
  options.data_dir = "/db";
  options.env = &env;

  corpus::Corpus corpus(ontology);
  {
    auto store = storage::DocumentStore::Open(options, ontology);
    ASSERT_TRUE(store.ok());
    for (int d = 0; d < 5; ++d) {
      corpus::Document doc({static_cast<ontology::ConceptId>(d), 10});
      ASSERT_TRUE((*store)->LogAdd(doc).ok());
      ASSERT_TRUE(corpus.AddDocument(std::move(doc)).ok());
    }
    ASSERT_TRUE((*store)->SyncWal().ok());
    index::ShardedIndex index(corpus);
    ASSERT_TRUE(
        (*store)->WriteCheckpoint(corpus, index, nullptr, nullptr, 1, 5).ok());
    EXPECT_EQ((*store)->stats().image_generation, 1u);
    EXPECT_EQ((*store)->stats().wal_bytes, 0u) << "WAL should rotate";
  }
  env.SimulateCrash();
  auto reopened = storage::DocumentStore::Open(options, ontology);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->stats().records_replayed, 0u);
  EXPECT_EQ((*reopened)->stats().image_generation, 1u);
  EXPECT_EQ((*reopened)->stats().last_lsn, 5u);
  EXPECT_TRUE((*reopened)->recovered_index_exact());
  ExpectSameDocuments((*reopened)->TakeRecoveredCorpus(), corpus);
}

// ---------------------------------------------------------------------------
// Engine-level lifecycle semantics (ephemeral — no storage needed)

TEST(LifecycleTest, TombstoneAndUpdateSemantics) {
  auto engine = MakeEphemeral(5);
  const auto ops = MakeWorkload(5, engine->ontology().num_concepts(), 20);
  ApplyOps(engine.get(), ops, /*expect_all_ok=*/true);

  const auto id = engine->AddDocument({1, 2, 3});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine->DeleteDocument(*id).ok());
  EXPECT_TRUE(engine->corpus().IsDeleted(*id));

  // Deleted documents: invisible to RDS, kNotFound as an SDS seed,
  // kNotFound to delete again or update (no resurrection).
  const std::vector<ontology::ConceptId> probe{1, 2, 3};
  const auto results = engine->FindRelevant(probe, 1000);
  ASSERT_TRUE(results.ok());
  for (const auto& scored : *results) EXPECT_NE(scored.id, *id);
  EXPECT_EQ(engine->FindSimilar(*id, 5).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(engine->DeleteDocument(*id).code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(engine->UpdateDocument(*id, {1}).code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(engine->DocumentDistance(*id, 0).status().code(),
            util::StatusCode::kNotFound);

  // Ids never assigned are kOutOfRange, distinguishing caller bugs
  // from legitimately-dead documents.
  const corpus::DocId beyond = engine->corpus().num_documents() + 10;
  EXPECT_EQ(engine->DeleteDocument(beyond).code(),
            util::StatusCode::kOutOfRange);

  // An update changes what searches see, atomically at its publish.
  const auto updated = engine->AddDocument({4, 5});
  ASSERT_TRUE(updated.ok());
  ASSERT_TRUE(engine->UpdateDocument(*updated, {6}).ok());
  const auto doc = engine->corpus().document(*updated).concepts();
  ASSERT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc[0], 6u);
}

TEST(LifecycleTest, CompactionPreservesResultsBitForBit) {
  core::RankingEngineOptions options;
  options.snapshot.target_docs_per_shard = 4;  // force many segments
  options.compaction.min_docs_per_segment = 64;
  auto engine = MakeEphemeral(6, options);
  auto reference = MakeEphemeral(6, options);
  const auto ops = MakeWorkload(6, engine->ontology().num_concepts(), 60);
  ApplyOps(engine.get(), ops, true);
  ApplyOps(reference.get(), ops, true);

  const std::size_t before = engine->snapshot()->corpus.num_segments();
  ASSERT_GT(before, 4u) << "workload too small to exercise compaction";
  ASSERT_TRUE(engine->Compact().ok());
  EXPECT_LT(engine->snapshot()->corpus.num_segments(), before);
  ExpectSameDocuments(engine->corpus(), reference->corpus());
  ExpectSameSearchResults(engine.get(), reference.get(), 6);
}

// ---------------------------------------------------------------------------
// Kill-recover differential: real filesystem, 20 seeds

class PersistenceDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PersistenceDifferentialTest, RecoveredEngineIsBitIdenticalToRebuilt) {
  const std::uint64_t seed = GetParam();
  const std::string dir =
      ::testing::TempDir() + "/ecdr_persist_" + std::to_string(seed);
  std::remove((dir + "/wal-0.log").c_str());

  core::RankingEngineOptions options;
  options.storage.data_dir = dir;
  // fsync in a tmpdir-backed test adds nothing but run time; crash
  // semantics are covered by the FaultyEnv sweep below.
  options.storage.fsync_mode = storage::StoreOptions::FsyncMode::kNever;
  options.snapshot.target_docs_per_shard = 8;

  const auto ops = MakeWorkload(seed, MakeOntology(seed).num_concepts(), 50);
  {
    auto opened = core::RankingEngine::Open(MakeOntology(seed), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ASSERT_EQ((*opened)->corpus().num_documents(), 0u)
        << "stale data dir from a previous run";
    std::vector<Op> first_half(ops.begin(),
                               ops.begin() + static_cast<long>(ops.size() / 2));
    std::vector<Op> second_half(ops.begin() + static_cast<long>(ops.size() / 2),
                                ops.end());
    ApplyOps(opened->get(), first_half, true);
    if (seed % 2 == 0) {
      // Half the seeds checkpoint mid-stream, so recovery exercises
      // image + WAL-on-top; the rest replay a pure WAL.
      ASSERT_TRUE((*opened)->Checkpoint().ok());
    }
    if (seed % 3 == 0) {
      ASSERT_TRUE((*opened)->Compact().ok());
    }
    ApplyOps(opened->get(), second_half, true);
    ASSERT_TRUE((*opened)->SyncDurability().ok());
  }  // ~RankingEngine: no clean shutdown beyond the final sync — the
     // store must recover from exactly what hit the Env.

  auto recovered = core::RankingEngine::Open(MakeOntology(seed), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto rebuilt = MakeEphemeral(seed);
  ApplyOps(rebuilt.get(), ops, true);

  EXPECT_EQ((*recovered)->durability_stats().store.last_lsn, ops.size());
  ExpectSameDocuments((*recovered)->corpus(), rebuilt->corpus());
  ExpectSameSearchResults(recovered->get(), rebuilt.get(), seed);

  // Clean up the data dir so reruns in the same TempDir start fresh.
  const auto entries = storage::Env::Posix()->ListDir(dir);
  ASSERT_TRUE(entries.ok());
  for (const std::string& entry : *entries) {
    std::remove((dir + "/" + entry).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, PersistenceDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Seeded crash-point sweep: an io fault at every operation index

struct CrashCase {
  util::FaultInjectorOptions::IoAction action;
  const char* name;
};

class CrashPointSweepTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashPointSweepTest, EveryCrashPointRecoversADurablePrefix) {
  const CrashCase& crash = GetParam();
  const std::uint64_t seed = 11;
  const auto ops = MakeWorkload(seed, MakeOntology(seed).num_concepts(), 24);

  // Calibration pass: count the io ops a fault-free run performs.
  std::uint64_t total_io_ops = 0;
  {
    storage::FaultyEnv env;
    util::FaultInjector injector({});
    env.set_injector(&injector);
    core::RankingEngineOptions options;
    options.storage.data_dir = "/db";
    options.storage.env = &env;
    auto engine = core::RankingEngine::Open(MakeOntology(seed), options);
    ASSERT_TRUE(engine.ok());
    ApplyOps(engine->get(), ops, true);
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    total_io_ops = injector.io_ops();
  }
  ASSERT_GT(total_io_ops, 20u);

  for (std::uint64_t at = 1; at <= total_io_ops; ++at) {
    storage::FaultyEnv env;
    util::FaultInjectorOptions fault_options;
    fault_options.seed = seed;
    fault_options.io_fail_at_op = at;
    fault_options.io_action = crash.action;
    util::FaultInjector injector(fault_options);
    env.set_injector(&injector);

    core::RankingEngineOptions options;
    options.storage.data_dir = "/db";
    options.storage.env = &env;

    std::size_t acked = 0;
    bool opened_ok = false;
    {
      auto engine = core::RankingEngine::Open(MakeOntology(seed), options);
      if (engine.ok()) {
        opened_ok = true;
        acked = ApplyOps(engine->get(), ops,
                         /*expect_all_ok=*/false);
        if (acked == ops.size()) {
          // The fault lands inside the checkpoint instead.
          (void)(*engine)->Checkpoint();
        }
      }
    }

    // kill -9: every unsynced byte is gone and the injector detaches.
    env.SimulateCrash();

    core::RankingEngineOptions recovery = options;
    auto recovered = core::RankingEngine::Open(MakeOntology(seed), recovery);
    ASSERT_TRUE(recovered.ok())
        << crash.name << " at op " << at << ": "
        << recovered.status().ToString();

    const std::uint64_t durable_ops =
        (*recovered)->durability_stats().store.last_lsn;
    ASSERT_LE(durable_ops, ops.size()) << crash.name << " at op " << at;
    if (opened_ok &&
        crash.action == util::FaultInjectorOptions::IoAction::kFail) {
      // With fail-fast faults every acknowledged op was synced, so the
      // durable prefix is exactly the acked prefix.
      EXPECT_EQ(durable_ops, acked) << crash.name << " at op " << at;
    }

    auto rebuilt = MakeEphemeral(seed);
    std::vector<Op> prefix(ops.begin(),
                           ops.begin() + static_cast<long>(durable_ops));
    ApplyOps(rebuilt.get(), prefix, true);
    ExpectSameDocuments((*recovered)->corpus(), rebuilt->corpus());
  }
}

INSTANTIATE_TEST_SUITE_P(
    IoActions, CrashPointSweepTest,
    ::testing::Values(
        CrashCase{util::FaultInjectorOptions::IoAction::kFail, "fail"},
        CrashCase{util::FaultInjectorOptions::IoAction::kShortWrite,
                  "short_write"},
        CrashCase{util::FaultInjectorOptions::IoAction::kFsyncDrop,
                  "fsync_drop"}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ecdr
