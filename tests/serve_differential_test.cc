// Bit-identity of the served path: over 20 seeded testbeds, every
// query answered through ecdr_serve's HTTP + JSON boundary must return
// exactly the ids, distances and error bounds of a direct
// RankingEngine::Search on the same snapshot. This holds because the
// response writer emits shortest-round-trip doubles (std::to_chars)
// and the test parses them back with the same strict JSON parser the
// server uses — any formatting shortcut, premature rounding, or
// per-request option drift (k, eps_theta) breaks it.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ranking_engine.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "ontology/generator.h"
#include "serve/json.h"
#include "serve/server.h"
#include "tests/serve_test_util.h"

namespace ecdr::serve {
namespace {

ontology::Ontology MakeOntology(std::uint64_t seed) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 600 + (seed % 4) * 200;
  config.extra_parent_prob = 0.15 * (seed % 3);
  config.seed = seed;
  auto ontology = ontology::GenerateOntology(config);
  EXPECT_TRUE(ontology.ok());
  return std::move(ontology).value();
}

corpus::Corpus MakeCorpus(const ontology::Ontology& ontology,
                          std::uint64_t seed) {
  corpus::CorpusGeneratorConfig config;
  config.num_documents = 60 + (seed % 5) * 10;
  config.avg_concepts_per_doc = 10 + (seed % 3) * 5;
  config.seed = seed * 7919 + 1;
  auto corpus = corpus::GenerateCorpus(ontology, config);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

/// Decodes a /v1/search response body back into scored documents using
/// the same strict parser the server uses; fails the test on any shape
/// surprise.
std::vector<core::ScoredDocument> DecodeResults(const std::string& body) {
  std::vector<core::ScoredDocument> out;
  auto parsed = json::Parse(body);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << body;
  if (!parsed.ok()) return out;
  const json::Value* results = parsed->Find("results");
  EXPECT_NE(results, nullptr);
  if (results == nullptr) return out;
  EXPECT_TRUE(results->is_array());
  for (const json::Value& entry : results->array) {
    EXPECT_TRUE(entry.is_object());
    const json::Value* id = entry.Find("id");
    const json::Value* distance = entry.Find("distance");
    const json::Value* error_bound = entry.Find("error_bound");
    EXPECT_NE(id, nullptr);
    EXPECT_NE(distance, nullptr);
    EXPECT_NE(error_bound, nullptr);
    if (id == nullptr || distance == nullptr || error_bound == nullptr) {
      return out;
    }
    out.push_back(core::ScoredDocument{
        static_cast<corpus::DocId>(id->number), distance->number,
        error_bound->number});
  }
  return out;
}

/// Exact ==, no tolerance: the wire format must round-trip the bits.
void ExpectBitIdentical(const std::vector<core::ScoredDocument>& want,
                        const std::vector<core::ScoredDocument>& got,
                        const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id) << label << " rank " << i;
    EXPECT_EQ(want[i].distance, got[i].distance) << label << " rank " << i;
    EXPECT_EQ(want[i].error_bound, got[i].error_bound)
        << label << " rank " << i;
  }
}

std::string ConceptsJson(const std::vector<ontology::ConceptId>& query) {
  std::string out = "[";
  for (std::size_t i = 0; i < query.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(query[i]);
  }
  out += ']';
  return out;
}

class ServeDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ServeDifferentialTest, HttpResponsesBitIdenticalToDirectSearch) {
  const std::uint64_t seed = GetParam();
  ontology::Ontology ontology = MakeOntology(seed);
  const corpus::Corpus corpus = MakeCorpus(ontology, seed);

  auto engine = core::RankingEngine::Create(std::move(ontology));
  ASSERT_TRUE(engine->AddCorpus(corpus).ok());

  Server server(engine.get());  // port 0: ephemeral
  ASSERT_TRUE(server.Start().ok());

  const std::uint32_t k = 1 + (seed % 3) * 4;  // 1, 5 or 9.
  const auto rds_queries =
      corpus::GenerateRdsQueries(corpus, 2, 3 + seed % 3, seed * 13 + 7);
  const corpus::DocId sds_doc =
      static_cast<corpus::DocId>(seed % corpus.num_documents());

  // RDS through both paths, default engine options.
  for (const auto& query : rds_queries) {
    const auto want = engine->FindRelevant(query, k);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(query) +
            ",\"k\":" + std::to_string(k) + "}");
    ASSERT_TRUE(response.transport_ok);
    ASSERT_TRUE(response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "rds");
  }

  // RDS with a per-request eps_theta override, exercised on both
  // paths: the HTTP field must reach KndsOptions unmodified.
  {
    core::SearchControl control;
    control.error_threshold = 0.5 * ((seed + 1) % 3);
    const auto want = engine->FindRelevant(rds_queries[0], k, control);
    ASSERT_TRUE(want.ok());
    std::string eps;
    serve::json::AppendDouble(&eps, control.error_threshold);
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(rds_queries[0]) +
            ",\"k\":" + std::to_string(k) + ",\"eps_theta\":" + eps + "}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "rds+eps");
  }

  // SDS by document id.
  {
    const auto want = engine->FindSimilar(sds_doc, k);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"doc\":" + std::to_string(sds_doc) +
            ",\"k\":" + std::to_string(k) + "}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "sds");
  }

  // SDS by explicit concept set (an external query document).
  {
    std::vector<ontology::ConceptId> concepts(
        corpus.document(sds_doc).concepts().begin(),
        corpus.document(sds_doc).concepts().end());
    const auto want = engine->FindSimilarToConcepts(concepts, k);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(concepts) +
            ",\"mode\":\"sds\",\"k\":" + std::to_string(k) + "}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "sds-concepts");
  }

  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ServeDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace ecdr::serve
