// Bit-identity of the served path: over 20 seeded testbeds, every
// query answered through ecdr_serve's HTTP + JSON boundary must return
// exactly the ids, distances and error bounds of a direct
// RankingEngine::Search on the same snapshot. This holds because the
// response writer emits shortest-round-trip doubles (std::to_chars)
// and the test parses them back with the same strict JSON parser the
// server uses — any formatting shortcut, premature rounding, or
// per-request option drift (k, eps_theta) breaks it.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_snapshot.h"
#include "core/ranking_engine.h"
#include "corpus/generator.h"
#include "index/block_postings.h"
#include "corpus/query_gen.h"
#include "ontology/generator.h"
#include "serve/json.h"
#include "serve/server.h"
#include "tests/serve_test_util.h"

namespace ecdr::serve {
namespace {

ontology::Ontology MakeOntology(std::uint64_t seed) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 600 + (seed % 4) * 200;
  config.extra_parent_prob = 0.15 * (seed % 3);
  config.seed = seed;
  auto ontology = ontology::GenerateOntology(config);
  EXPECT_TRUE(ontology.ok());
  return std::move(ontology).value();
}

corpus::Corpus MakeCorpus(const ontology::Ontology& ontology,
                          std::uint64_t seed) {
  corpus::CorpusGeneratorConfig config;
  config.num_documents = 60 + (seed % 5) * 10;
  config.avg_concepts_per_doc = 10 + (seed % 3) * 5;
  config.seed = seed * 7919 + 1;
  auto corpus = corpus::GenerateCorpus(ontology, config);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

/// Decodes a /v1/search response body back into scored documents using
/// the same strict parser the server uses; fails the test on any shape
/// surprise.
std::vector<core::ScoredDocument> DecodeResults(const std::string& body) {
  std::vector<core::ScoredDocument> out;
  auto parsed = json::Parse(body);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << body;
  if (!parsed.ok()) return out;
  const json::Value* results = parsed->Find("results");
  EXPECT_NE(results, nullptr);
  if (results == nullptr) return out;
  EXPECT_TRUE(results->is_array());
  for (const json::Value& entry : results->array) {
    EXPECT_TRUE(entry.is_object());
    const json::Value* id = entry.Find("id");
    const json::Value* distance = entry.Find("distance");
    const json::Value* error_bound = entry.Find("error_bound");
    EXPECT_NE(id, nullptr);
    EXPECT_NE(distance, nullptr);
    EXPECT_NE(error_bound, nullptr);
    if (id == nullptr || distance == nullptr || error_bound == nullptr) {
      return out;
    }
    out.push_back(core::ScoredDocument{
        static_cast<corpus::DocId>(id->number), distance->number,
        error_bound->number});
  }
  return out;
}

/// Exact ==, no tolerance: the wire format must round-trip the bits.
void ExpectBitIdentical(const std::vector<core::ScoredDocument>& want,
                        const std::vector<core::ScoredDocument>& got,
                        const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id) << label << " rank " << i;
    EXPECT_EQ(want[i].distance, got[i].distance) << label << " rank " << i;
    EXPECT_EQ(want[i].error_bound, got[i].error_bound)
        << label << " rank " << i;
  }
}

std::string ConceptsJson(const std::vector<ontology::ConceptId>& query) {
  std::string out = "[";
  for (std::size_t i = 0; i < query.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(query[i]);
  }
  out += ']';
  return out;
}

class ServeDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ServeDifferentialTest, HttpResponsesBitIdenticalToDirectSearch) {
  const std::uint64_t seed = GetParam();
  ontology::Ontology ontology = MakeOntology(seed);
  const corpus::Corpus corpus = MakeCorpus(ontology, seed);

  auto engine = core::RankingEngine::Create(std::move(ontology));
  ASSERT_TRUE(engine->AddCorpus(corpus).ok());

  Server server(engine.get());  // port 0: ephemeral
  ASSERT_TRUE(server.Start().ok());

  const std::uint32_t k = 1 + (seed % 3) * 4;  // 1, 5 or 9.
  const auto rds_queries =
      corpus::GenerateRdsQueries(corpus, 2, 3 + seed % 3, seed * 13 + 7);
  const corpus::DocId sds_doc =
      static_cast<corpus::DocId>(seed % corpus.num_documents());

  // RDS through both paths, default engine options.
  for (const auto& query : rds_queries) {
    const auto want = engine->FindRelevant(query, k);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(query) +
            ",\"k\":" + std::to_string(k) + "}");
    ASSERT_TRUE(response.transport_ok);
    ASSERT_TRUE(response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "rds");
  }

  // RDS with a per-request eps_theta override, exercised on both
  // paths: the HTTP field must reach KndsOptions unmodified.
  {
    core::SearchControl control;
    control.error_threshold = 0.5 * ((seed + 1) % 3);
    const auto want = engine->FindRelevant(rds_queries[0], k, control);
    ASSERT_TRUE(want.ok());
    std::string eps;
    serve::json::AppendDouble(&eps, control.error_threshold);
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(rds_queries[0]) +
            ",\"k\":" + std::to_string(k) + ",\"eps_theta\":" + eps + "}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "rds+eps");
  }

  // SDS by document id.
  {
    const auto want = engine->FindSimilar(sds_doc, k);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"doc\":" + std::to_string(sds_doc) +
            ",\"k\":" + std::to_string(k) + "}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "sds");
  }

  // SDS by explicit concept set (an external query document).
  {
    std::vector<ontology::ConceptId> concepts(
        corpus.document(sds_doc).concepts().begin(),
        corpus.document(sds_doc).concepts().end());
    const auto want = engine->FindSimilarToConcepts(concepts, k);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(concepts) +
            ",\"mode\":\"sds\",\"k\":" + std::to_string(k) + "}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "sds-concepts");
  }

  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ServeDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// The {"ranker":"ta"} route serves exact RDS answers off the
// compressed block-max postings sidecar; at eps_theta = 0 the engine is
// exact too, so ids and distances must agree bit-for-bit (error bounds
// are compared to zero on the TA side — the sidecar has no error to
// report). /status and /metrics must expose the postings footprint and
// the decoded/skipped block counters the served queries accumulated.
TEST(ServeTaSidecarTest, TaRouteMatchesExactEngineAndReportsFootprint) {
  ontology::Ontology ontology = MakeOntology(5);
  const corpus::Corpus corpus = MakeCorpus(ontology, 5);

  auto engine = core::RankingEngine::Create(std::move(ontology));
  ASSERT_TRUE(engine->AddCorpus(corpus).ok());

  const auto pinned = engine->snapshot();
  index::BlockPostingsOptions postings_options;
  postings_options.block_size = 16;
  const index::BlockPostings postings(pinned->corpus, postings_options);

  ServerOptions options;
  options.ta_postings = &postings;
  options.ta_corpus = &pinned->corpus;
  options.ta_generation = pinned->generation;
  Server server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());

  const std::uint32_t k = 7;
  const auto rds_queries = corpus::GenerateRdsQueries(corpus, 4, 3, 99);
  for (const auto& query : rds_queries) {
    core::SearchControl control;
    control.error_threshold = 0.0;
    const auto want = engine->FindRelevant(query, k, control);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(query) +
            ",\"k\":" + std::to_string(k) + ",\"ranker\":\"ta\"}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    const auto got = DecodeResults(response.body);
    ASSERT_EQ(want->size(), got.size());
    for (std::size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*want)[i].id, got[i].id) << "rank " << i;
      EXPECT_EQ((*want)[i].distance, got[i].distance) << "rank " << i;
      EXPECT_EQ(got[i].error_bound, 0.0) << "rank " << i;
    }
    // The sidecar answers for the generation it was built over.
    const auto parsed = json::Parse(response.body);
    ASSERT_TRUE(parsed.ok());
    const json::Value* generation = parsed->Find("generation");
    ASSERT_NE(generation, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(generation->number),
              pinned->generation);
  }

  // Malformed sidecar requests: unknown ranker, and TA with an SDS
  // shape, are 400s.
  EXPECT_EQ(serve_test::PostJson(server.port(), "/v1/search",
                                 "{\"concepts\":[1],\"ranker\":\"x\"}")
                .status,
            400);
  EXPECT_EQ(serve_test::PostJson(server.port(), "/v1/search",
                                 "{\"doc\":0,\"ranker\":\"ta\"}")
                .status,
            400);

  // /status: postings footprint + the counters the queries accumulated.
  const auto status = serve_test::Get(server.port(), "/status");
  ASSERT_TRUE(status.transport_ok && status.complete);
  ASSERT_EQ(status.status, 200);
  const auto status_json = json::Parse(status.body);
  ASSERT_TRUE(status_json.ok()) << status.body;
  const json::Value* postings_json = status_json->Find("postings");
  ASSERT_NE(postings_json, nullptr) << status.body;
  const json::Value* enabled = postings_json->Find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->is_bool() && enabled->boolean);
  const json::Value* memory = postings_json->Find("memory_bytes");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(memory->number),
            postings.memory_bytes());
  const json::Value* searches = postings_json->Find("ta_searches");
  ASSERT_NE(searches, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(searches->number),
            rds_queries.size());
  const json::Value* decoded = postings_json->Find("decoded_blocks");
  ASSERT_NE(decoded, nullptr);
  EXPECT_GT(decoded->number, 0.0);
  const json::Value* skipped = postings_json->Find("skipped_blocks");
  ASSERT_NE(skipped, nullptr);  // may be 0 on a tiny corpus, must exist

  // /metrics: the same data in Prometheus exposition format.
  const auto metrics = serve_test::Get(server.port(), "/metrics");
  ASSERT_TRUE(metrics.transport_ok && metrics.complete);
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("ecdr_postings_memory_bytes{part=\"arena\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ecdr_postings_blocks_total{event=\"skipped\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ecdr_ta_searches_total"), std::string::npos);

  server.Stop();
}

// Without the sidecar the route is a clean 400, and /status reports the
// postings section disabled rather than omitting it.
TEST(ServeTaSidecarTest, TaRouteWithoutSidecarIsRejected) {
  ontology::Ontology ontology = MakeOntology(6);
  const corpus::Corpus corpus = MakeCorpus(ontology, 6);
  auto engine = core::RankingEngine::Create(std::move(ontology));
  ASSERT_TRUE(engine->AddCorpus(corpus).ok());
  Server server(engine.get());
  ASSERT_TRUE(server.Start().ok());

  EXPECT_EQ(serve_test::PostJson(server.port(), "/v1/search",
                                 "{\"concepts\":[1],\"ranker\":\"ta\"}")
                .status,
            400);
  const auto status = serve_test::Get(server.port(), "/status");
  ASSERT_EQ(status.status, 200);
  const auto status_json = json::Parse(status.body);
  ASSERT_TRUE(status_json.ok());
  const json::Value* postings_json = status_json->Find("postings");
  ASSERT_NE(postings_json, nullptr);
  const json::Value* enabled = postings_json->Find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->is_bool() && !enabled->boolean);

  server.Stop();
}

}  // namespace
}  // namespace ecdr::serve
