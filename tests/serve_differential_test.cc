// Bit-identity of the served path: over 20 seeded testbeds, every
// query answered through ecdr_serve's HTTP + JSON boundary must return
// exactly the ids, distances and error bounds of a direct
// RankingEngine::Search on the same snapshot. This holds because the
// response writer emits shortest-round-trip doubles (std::to_chars)
// and the test parses them back with the same strict JSON parser the
// server uses — any formatting shortcut, premature rounding, or
// per-request option drift (k, eps_theta) breaks it.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_snapshot.h"
#include "core/ranking_engine.h"
#include "corpus/generator.h"
#include "index/block_postings.h"
#include "corpus/query_gen.h"
#include "ontology/generator.h"
#include "serve/json.h"
#include "serve/server.h"
#include "tests/serve_test_util.h"

namespace ecdr::serve {
namespace {

ontology::Ontology MakeOntology(std::uint64_t seed) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 600 + (seed % 4) * 200;
  config.extra_parent_prob = 0.15 * (seed % 3);
  config.seed = seed;
  auto ontology = ontology::GenerateOntology(config);
  EXPECT_TRUE(ontology.ok());
  return std::move(ontology).value();
}

corpus::Corpus MakeCorpus(const ontology::Ontology& ontology,
                          std::uint64_t seed) {
  corpus::CorpusGeneratorConfig config;
  config.num_documents = 60 + (seed % 5) * 10;
  config.avg_concepts_per_doc = 10 + (seed % 3) * 5;
  config.seed = seed * 7919 + 1;
  auto corpus = corpus::GenerateCorpus(ontology, config);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

/// Decodes a /v1/search response body back into scored documents using
/// the same strict parser the server uses; fails the test on any shape
/// surprise.
std::vector<core::ScoredDocument> DecodeResults(const std::string& body) {
  std::vector<core::ScoredDocument> out;
  auto parsed = json::Parse(body);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << body;
  if (!parsed.ok()) return out;
  const json::Value* results = parsed->Find("results");
  EXPECT_NE(results, nullptr);
  if (results == nullptr) return out;
  EXPECT_TRUE(results->is_array());
  for (const json::Value& entry : results->array) {
    EXPECT_TRUE(entry.is_object());
    const json::Value* id = entry.Find("id");
    const json::Value* distance = entry.Find("distance");
    const json::Value* error_bound = entry.Find("error_bound");
    EXPECT_NE(id, nullptr);
    EXPECT_NE(distance, nullptr);
    EXPECT_NE(error_bound, nullptr);
    if (id == nullptr || distance == nullptr || error_bound == nullptr) {
      return out;
    }
    out.push_back(core::ScoredDocument{
        static_cast<corpus::DocId>(id->number), distance->number,
        error_bound->number});
  }
  return out;
}

/// Exact ==, no tolerance: the wire format must round-trip the bits.
void ExpectBitIdentical(const std::vector<core::ScoredDocument>& want,
                        const std::vector<core::ScoredDocument>& got,
                        const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id) << label << " rank " << i;
    EXPECT_EQ(want[i].distance, got[i].distance) << label << " rank " << i;
    EXPECT_EQ(want[i].error_bound, got[i].error_bound)
        << label << " rank " << i;
  }
}

std::string ConceptsJson(const std::vector<ontology::ConceptId>& query) {
  std::string out = "[";
  for (std::size_t i = 0; i < query.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(query[i]);
  }
  out += ']';
  return out;
}

class ServeDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ServeDifferentialTest, HttpResponsesBitIdenticalToDirectSearch) {
  const std::uint64_t seed = GetParam();
  ontology::Ontology ontology = MakeOntology(seed);
  const corpus::Corpus corpus = MakeCorpus(ontology, seed);

  auto engine = core::RankingEngine::Create(std::move(ontology));
  ASSERT_TRUE(engine->AddCorpus(corpus).ok());

  Server server(engine.get());  // port 0: ephemeral
  ASSERT_TRUE(server.Start().ok());

  const std::uint32_t k = 1 + (seed % 3) * 4;  // 1, 5 or 9.
  const auto rds_queries =
      corpus::GenerateRdsQueries(corpus, 2, 3 + seed % 3, seed * 13 + 7);
  const corpus::DocId sds_doc =
      static_cast<corpus::DocId>(seed % corpus.num_documents());

  // RDS through both paths, default engine options.
  for (const auto& query : rds_queries) {
    const auto want = engine->FindRelevant(query, k);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(query) +
            ",\"k\":" + std::to_string(k) + "}");
    ASSERT_TRUE(response.transport_ok);
    ASSERT_TRUE(response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "rds");
  }

  // RDS with a per-request eps_theta override, exercised on both
  // paths: the HTTP field must reach KndsOptions unmodified.
  {
    core::SearchControl control;
    control.error_threshold = 0.5 * ((seed + 1) % 3);
    const auto want = engine->FindRelevant(rds_queries[0], k, control);
    ASSERT_TRUE(want.ok());
    std::string eps;
    serve::json::AppendDouble(&eps, control.error_threshold);
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(rds_queries[0]) +
            ",\"k\":" + std::to_string(k) + ",\"eps_theta\":" + eps + "}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "rds+eps");
  }

  // SDS by document id.
  {
    const auto want = engine->FindSimilar(sds_doc, k);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"doc\":" + std::to_string(sds_doc) +
            ",\"k\":" + std::to_string(k) + "}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "sds");
  }

  // SDS by explicit concept set (an external query document).
  {
    std::vector<ontology::ConceptId> concepts(
        corpus.document(sds_doc).concepts().begin(),
        corpus.document(sds_doc).concepts().end());
    const auto want = engine->FindSimilarToConcepts(concepts, k);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(concepts) +
            ",\"mode\":\"sds\",\"k\":" + std::to_string(k) + "}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    ExpectBitIdentical(*want, DecodeResults(response.body), "sds-concepts");
  }

  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ServeDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// The {"ranker":"ta"} route serves exact RDS answers off the
// compressed block-max postings sidecar; at eps_theta = 0 the engine is
// exact too, so ids and distances must agree bit-for-bit (error bounds
// are compared to zero on the TA side — the sidecar has no error to
// report). /status and /metrics must expose the postings footprint and
// the decoded/skipped block counters the served queries accumulated.
TEST(ServeTaSidecarTest, TaRouteMatchesExactEngineAndReportsFootprint) {
  ontology::Ontology ontology = MakeOntology(5);
  const corpus::Corpus corpus = MakeCorpus(ontology, 5);

  auto engine = core::RankingEngine::Create(std::move(ontology));
  ASSERT_TRUE(engine->AddCorpus(corpus).ok());

  const auto pinned = engine->snapshot();
  index::BlockPostingsOptions postings_options;
  postings_options.block_size = 16;
  const index::BlockPostings postings(pinned->corpus, postings_options);

  ServerOptions options;
  options.ta_postings = &postings;
  options.ta_corpus = &pinned->corpus;
  options.ta_generation = pinned->generation;
  Server server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());

  const std::uint32_t k = 7;
  const auto rds_queries = corpus::GenerateRdsQueries(corpus, 4, 3, 99);
  for (const auto& query : rds_queries) {
    core::SearchControl control;
    control.error_threshold = 0.0;
    const auto want = engine->FindRelevant(query, k, control);
    ASSERT_TRUE(want.ok());
    const auto response = serve_test::PostJson(
        server.port(), "/v1/search",
        "{\"concepts\":" + ConceptsJson(query) +
            ",\"k\":" + std::to_string(k) + ",\"ranker\":\"ta\"}");
    ASSERT_TRUE(response.transport_ok && response.complete);
    ASSERT_EQ(response.status, 200) << response.body;
    const auto got = DecodeResults(response.body);
    ASSERT_EQ(want->size(), got.size());
    for (std::size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*want)[i].id, got[i].id) << "rank " << i;
      EXPECT_EQ((*want)[i].distance, got[i].distance) << "rank " << i;
      EXPECT_EQ(got[i].error_bound, 0.0) << "rank " << i;
    }
    // The sidecar answers for the generation it was built over.
    const auto parsed = json::Parse(response.body);
    ASSERT_TRUE(parsed.ok());
    const json::Value* generation = parsed->Find("generation");
    ASSERT_NE(generation, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(generation->number),
              pinned->generation);
  }

  // Malformed sidecar requests: unknown ranker, and TA with an SDS
  // shape, are 400s.
  EXPECT_EQ(serve_test::PostJson(server.port(), "/v1/search",
                                 "{\"concepts\":[1],\"ranker\":\"x\"}")
                .status,
            400);
  EXPECT_EQ(serve_test::PostJson(server.port(), "/v1/search",
                                 "{\"doc\":0,\"ranker\":\"ta\"}")
                .status,
            400);

  // /status: postings footprint + the counters the queries accumulated.
  const auto status = serve_test::Get(server.port(), "/status");
  ASSERT_TRUE(status.transport_ok && status.complete);
  ASSERT_EQ(status.status, 200);
  const auto status_json = json::Parse(status.body);
  ASSERT_TRUE(status_json.ok()) << status.body;
  const json::Value* postings_json = status_json->Find("postings");
  ASSERT_NE(postings_json, nullptr) << status.body;
  const json::Value* enabled = postings_json->Find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->is_bool() && enabled->boolean);
  const json::Value* memory = postings_json->Find("memory_bytes");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(memory->number),
            postings.memory_bytes());
  const json::Value* searches = postings_json->Find("ta_searches");
  ASSERT_NE(searches, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(searches->number),
            rds_queries.size());
  const json::Value* decoded = postings_json->Find("decoded_blocks");
  ASSERT_NE(decoded, nullptr);
  EXPECT_GT(decoded->number, 0.0);
  const json::Value* skipped = postings_json->Find("skipped_blocks");
  ASSERT_NE(skipped, nullptr);  // may be 0 on a tiny corpus, must exist

  // /metrics: the same data in Prometheus exposition format.
  const auto metrics = serve_test::Get(server.port(), "/metrics");
  ASSERT_TRUE(metrics.transport_ok && metrics.complete);
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("ecdr_postings_memory_bytes{part=\"arena\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ecdr_postings_blocks_total{event=\"skipped\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ecdr_ta_searches_total"), std::string::npos);

  server.Stop();
}

// Without the sidecar the route is a clean 400, and /status reports the
// postings section disabled rather than omitting it.
TEST(ServeTaSidecarTest, TaRouteWithoutSidecarIsRejected) {
  ontology::Ontology ontology = MakeOntology(6);
  const corpus::Corpus corpus = MakeCorpus(ontology, 6);
  auto engine = core::RankingEngine::Create(std::move(ontology));
  ASSERT_TRUE(engine->AddCorpus(corpus).ok());
  Server server(engine.get());
  ASSERT_TRUE(server.Start().ok());

  EXPECT_EQ(serve_test::PostJson(server.port(), "/v1/search",
                                 "{\"concepts\":[1],\"ranker\":\"ta\"}")
                .status,
            400);
  const auto status = serve_test::Get(server.port(), "/status");
  ASSERT_EQ(status.status, 200);
  const auto status_json = json::Parse(status.body);
  ASSERT_TRUE(status_json.ok());
  const json::Value* postings_json = status_json->Find("postings");
  ASSERT_NE(postings_json, nullptr);
  const json::Value* enabled = postings_json->Find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->is_bool() && !enabled->boolean);

  server.Stop();
}

// ---------------------------------------------------------------------
// Live ontology administration over HTTP: the three admin mutation
// endpoints step the version, report incremental re-enumeration stats,
// and keep the TA sidecar serving bit-identically to the exact engine
// across all three rebuild modes (incremental splice, full rebuild,
// retire-only skip).

std::uint64_t NumberField(const json::Value& object, const char* name) {
  const json::Value* field = object.Find(name);
  EXPECT_NE(field, nullptr) << name;
  if (field == nullptr || !field->is_number()) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(field->number);
}

// 64-bit hashes cross the wire as "0x%016x" strings (a JSON number is
// a double and silently rounds past 2^53).
std::string HashField(const json::Value& object, const char* name) {
  const json::Value* field = object.Find(name);
  EXPECT_NE(field, nullptr) << name;
  if (field == nullptr || !field->is_string()) return {};
  EXPECT_EQ(field->string.rfind("0x", 0), 0u) << name << "=" << field->string;
  EXPECT_EQ(field->string.size(), 18u) << name << "=" << field->string;
  return field->string;
}

TEST(ServeOntologyAdminTest, MutationsEvolveServingExactly) {
  ontology::Ontology ontology = MakeOntology(5);
  const corpus::Corpus corpus = MakeCorpus(ontology, 5);
  const ontology::ConceptId base_n = ontology.num_concepts();

  auto engine = core::RankingEngine::Create(std::move(ontology));
  ASSERT_TRUE(engine->AddCorpus(corpus).ok());
  const auto pinned = engine->snapshot();
  index::BlockPostingsOptions postings_options;
  postings_options.block_size = 16;
  const index::BlockPostings postings(pinned->corpus, postings_options);

  ServerOptions options;
  options.ta_postings = &postings;
  options.ta_corpus = &pinned->corpus;
  options.ta_generation = pinned->generation;
  Server server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());

  // TA-route answers must stay bit-identical to the exact engine after
  // every evolution — the serving referee for the sidecar hand-off.
  const std::uint32_t k = 7;
  const auto expect_ta_exact =
      [&](const std::vector<std::vector<ontology::ConceptId>>& queries,
          const char* label) {
        for (const auto& query : queries) {
          core::SearchControl control;
          control.error_threshold = 0.0;
          const auto want = engine->FindRelevant(query, k, control);
          ASSERT_TRUE(want.ok()) << label;
          const auto response = serve_test::PostJson(
              server.port(), "/v1/search",
              "{\"concepts\":" + ConceptsJson(query) +
                  ",\"k\":" + std::to_string(k) + ",\"ranker\":\"ta\"}");
          ASSERT_TRUE(response.transport_ok && response.complete) << label;
          ASSERT_EQ(response.status, 200) << label << ": " << response.body;
          const auto got = DecodeResults(response.body);
          ASSERT_EQ(want->size(), got.size()) << label;
          for (std::size_t i = 0; i < want->size(); ++i) {
            EXPECT_EQ((*want)[i].id, got[i].id) << label << " rank " << i;
            EXPECT_EQ((*want)[i].distance, got[i].distance)
                << label << " rank " << i;
          }
        }
      };

  const std::vector<std::vector<ontology::ConceptId>> base_queries = {
      {5, 12}, {3, 200, 450}, {100, 101, 7}};
  expect_ta_exact(base_queries, "baseline");

  const auto status_before = serve_test::Get(server.port(), "/status");
  ASSERT_EQ(status_before.status, 200);
  const auto before_json = json::Parse(status_before.body);
  ASSERT_TRUE(before_json.ok());
  const json::Value* onto_before = before_json->Find("ontology");
  ASSERT_NE(onto_before, nullptr) << status_before.body;
  EXPECT_EQ(NumberField(*onto_before, "version"), 0u);
  const std::string identity_before =
      HashField(*onto_before, "identity_hash");
  const std::string baseline_hash = HashField(*onto_before, "baseline_hash");

  // 1. add_concept: a distance-preserving leaf — only the leaf gets
  //    addressed, every pre-existing pool span is spliced, and the
  //    sidecar takes the incremental BuildEvolved path.
  const auto added = serve_test::PostJson(
      server.port(), "/v1/admin/ontology/add_concept",
      "{\"name\":\"served_leaf\",\"parents\":[5,12]}");
  ASSERT_TRUE(added.transport_ok && added.complete);
  ASSERT_EQ(added.status, 200) << added.body;
  const auto added_json = json::Parse(added.body);
  ASSERT_TRUE(added_json.ok()) << added.body;
  EXPECT_EQ(NumberField(*added_json, "concept"),
            static_cast<std::uint64_t>(base_n));
  EXPECT_EQ(NumberField(*added_json, "version"), 1u);
  EXPECT_EQ(NumberField(*added_json, "readdressed"), 1u);
  EXPECT_EQ(NumberField(*added_json, "readdressed_existing"), 0u);
  EXPECT_EQ(NumberField(*added_json, "reused"),
            static_cast<std::uint64_t>(base_n));
  EXPECT_EQ(NumberField(*added_json, "invalidated"), 0u);
  const std::string identity_added = HashField(*added_json, "identity_hash");
  EXPECT_NE(identity_added, identity_before);
  EXPECT_NE(added_json->Find("generation"), nullptr) << added.body;

  std::vector<std::vector<ontology::ConceptId>> evolved_queries =
      base_queries;
  evolved_queries.push_back({base_n});
  evolved_queries.push_back({base_n, 7});
  expect_ta_exact(evolved_queries, "after add_concept");

  // 2. add_edge onto that (now pre-existing) leaf: its address set
  //    changes, so the sidecar must take the full-rebuild path and the
  //    pair cache drops exactly that one concept.
  const auto edged = serve_test::PostJson(
      server.port(), "/v1/admin/ontology/add_edge",
      "{\"parent\":3,\"child\":" + std::to_string(base_n) + "}");
  ASSERT_EQ(edged.status, 200) << edged.body;
  const auto edged_json = json::Parse(edged.body);
  ASSERT_TRUE(edged_json.ok()) << edged.body;
  EXPECT_EQ(NumberField(*edged_json, "parent"), 3u);
  EXPECT_EQ(NumberField(*edged_json, "child"),
            static_cast<std::uint64_t>(base_n));
  EXPECT_EQ(NumberField(*edged_json, "version"), 2u);
  EXPECT_EQ(NumberField(*edged_json, "readdressed"), 1u);
  EXPECT_EQ(NumberField(*edged_json, "readdressed_existing"), 1u);
  EXPECT_EQ(NumberField(*edged_json, "invalidated"), 1u);
  expect_ta_exact(evolved_queries, "after add_edge");

  // 3. retire_concept: structurally a no-op — the sidecar is kept
  //    as-is (skip path) and just re-stamped with the new version.
  const ontology::ConceptId retire_target = base_n - 1;
  const auto retired = serve_test::PostJson(
      server.port(), "/v1/admin/ontology/retire_concept",
      "{\"concept\":" + std::to_string(retire_target) + "}");
  ASSERT_EQ(retired.status, 200) << retired.body;
  const auto retired_json = json::Parse(retired.body);
  ASSERT_TRUE(retired_json.ok()) << retired.body;
  EXPECT_EQ(NumberField(*retired_json, "retired"),
            static_cast<std::uint64_t>(retire_target));
  EXPECT_EQ(NumberField(*retired_json, "version"), 3u);
  EXPECT_EQ(NumberField(*retired_json, "readdressed"), 0u);
  EXPECT_EQ(NumberField(*retired_json, "invalidated"), 0u);
  expect_ta_exact(evolved_queries, "after retire");

  // /status: version lineage, lifetime counters, and the sidecar's
  // rebuild-mode split (1 incremental, 1 full, retire skipped both).
  const auto status_after = serve_test::Get(server.port(), "/status");
  ASSERT_EQ(status_after.status, 200);
  const auto after_json = json::Parse(status_after.body);
  ASSERT_TRUE(after_json.ok()) << status_after.body;
  const json::Value* onto_after = after_json->Find("ontology");
  ASSERT_NE(onto_after, nullptr) << status_after.body;
  EXPECT_EQ(NumberField(*onto_after, "version"), 3u);
  EXPECT_EQ(NumberField(*onto_after, "num_concepts"),
            static_cast<std::uint64_t>(base_n) + 1);
  EXPECT_EQ(NumberField(*onto_after, "num_retired"), 1u);
  EXPECT_EQ(NumberField(*onto_after, "evolutions"), 3u);
  EXPECT_EQ(NumberField(*onto_after, "mutations_applied"), 3u);
  EXPECT_EQ(NumberField(*onto_after, "readdressed_total"), 2u);
  EXPECT_EQ(HashField(*onto_after, "baseline_hash"), baseline_hash);
  EXPECT_NE(HashField(*onto_after, "identity_hash"), identity_before);
  const json::Value* postings_after = after_json->Find("postings");
  ASSERT_NE(postings_after, nullptr) << status_after.body;
  EXPECT_EQ(NumberField(*postings_after, "ontology_version"), 3u);
  EXPECT_EQ(NumberField(*postings_after, "rebuilds_incremental"), 1u);
  EXPECT_EQ(NumberField(*postings_after, "rebuilds_full"), 1u);
  EXPECT_EQ(NumberField(*postings_after, "generation"), pinned->generation);

  // /metrics mirrors the same lineage.
  const auto metrics = serve_test::Get(server.port(), "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("ecdr_ontology_version 3"), std::string::npos);
  EXPECT_NE(metrics.body.find(
                "ecdr_postings_rebuilds_total{mode=\"incremental\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ecdr_postings_rebuilds_total{mode=\"full\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ecdr_ontology_info{identity_hash=\""),
            std::string::npos);

  server.Stop();
}

// Malformed and semantically invalid admin mutations are clean 4xx
// responses, and none of them move the ontology version.
TEST(ServeOntologyAdminTest, InvalidMutationsAreRejectedWithoutEvolving) {
  ontology::Ontology ontology = MakeOntology(6);
  const corpus::Corpus corpus = MakeCorpus(ontology, 6);
  auto engine = core::RankingEngine::Create(std::move(ontology));
  ASSERT_TRUE(engine->AddCorpus(corpus).ok());
  Server server(engine.get());
  ASSERT_TRUE(server.Start().ok());

  // Admin targets are worker targets: GET is a 405, not a 404.
  EXPECT_EQ(serve_test::Get(server.port(), "/v1/admin/ontology/add_concept")
                .status,
            405);

  const auto post = [&](const char* target, const std::string& body) {
    return serve_test::PostJson(server.port(), target, body).status;
  };
  // Shape errors.
  EXPECT_EQ(post("/v1/admin/ontology/add_concept", "{}"), 400);
  EXPECT_EQ(post("/v1/admin/ontology/add_concept", "{\"name\":\"x\"}"), 400);
  EXPECT_EQ(post("/v1/admin/ontology/add_concept",
                 "{\"name\":\"x\",\"parents\":[]}"),
            400);
  EXPECT_EQ(post("/v1/admin/ontology/add_concept",
                 "{\"name\":\"x\",\"parents\":[\"five\"]}"),
            400);
  EXPECT_EQ(post("/v1/admin/ontology/retire_concept", "{}"), 400);
  EXPECT_EQ(post("/v1/admin/ontology/add_edge", "{\"parent\":1}"), 400);
  // Semantic errors caught by the engine's mutation validation.
  EXPECT_EQ(post("/v1/admin/ontology/retire_concept", "{\"concept\":0}"),
            400);  // the root
  EXPECT_EQ(post("/v1/admin/ontology/add_concept",
                 "{\"name\":\"C4\",\"parents\":[1]}"),
            400);  // duplicate name
  EXPECT_EQ(post("/v1/admin/ontology/add_edge",
                 "{\"parent\":1,\"child\":0}"),
            400);  // edge into the root

  const auto status = serve_test::Get(server.port(), "/status");
  ASSERT_EQ(status.status, 200);
  const auto status_json = json::Parse(status.body);
  ASSERT_TRUE(status_json.ok());
  const json::Value* onto = status_json->Find("ontology");
  ASSERT_NE(onto, nullptr) << status.body;
  EXPECT_EQ(NumberField(*onto, "version"), 0u);
  EXPECT_EQ(NumberField(*onto, "evolutions"), 0u);
  EXPECT_EQ(NumberField(*onto, "mutations_applied"), 0u);

  server.Stop();
}

}  // namespace
}  // namespace ecdr::serve
