#include "core/knds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/exhaustive_ranker.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "index/inverted_index.h"
#include "ontology/distance_oracle.h"
#include "ontology/generator.h"
#include "tests/fig3_fixture.h"
#include "util/random.h"

namespace ecdr::core {
namespace {

using corpus::Corpus;
using corpus::DocId;
using corpus::Document;
using ontology::AddressEnumerator;
using ontology::ConceptId;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

std::vector<double> Distances(const std::vector<ScoredDocument>& results) {
  std::vector<double> distances;
  distances.reserve(results.size());
  for (const auto& r : results) distances.push_back(r.distance);
  return distances;
}

void ExpectSameTopK(const std::vector<ScoredDocument>& got,
                    const std::vector<ScoredDocument>& want,
                    const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  // The top-k *distance multiset* is unique even when ties straddle the
  // k-th position, so compare distances, not ids.
  const std::vector<double> got_d = Distances(got);
  const std::vector<double> want_d = Distances(want);
  for (std::size_t i = 0; i < got_d.size(); ++i) {
    EXPECT_NEAR(got_d[i], want_d[i], 1e-9)
        << context << " position " << i;
  }
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end(),
                             [](const ScoredDocument& a,
                                const ScoredDocument& b) {
                               return !ScoredBefore(b, a);
                             }))
      << context;
}

// A small world assembled around the Figure 3 ontology.
struct Fig3World {
  Fig3 fig3;
  Corpus corpus;
  AddressEnumerator enumerator;
  Drc drc;
  index::InvertedIndex index;

  explicit Fig3World(Fig3 base, std::vector<Document> docs)
      : fig3(std::move(base)),
        corpus(fig3.ontology),
        enumerator(fig3.ontology),
        drc(fig3.ontology, &enumerator),
        index((FillCorpus(docs), corpus)) {}

  // Sub-objects hold pointers into fig3.ontology; relocation would
  // dangle them. Factories rely on C++17 guaranteed copy elision.
  Fig3World(const Fig3World&) = delete;
  Fig3World(Fig3World&&) = delete;

 private:
  void FillCorpus(std::vector<Document>& docs) {
    for (Document& doc : docs) {
      ECDR_CHECK(corpus.AddDocument(std::move(doc)).ok());
    }
  }
};

Fig3World MakeFig3World() {
  Fig3 fig3 = MakeFig3Ontology();
  std::vector<Document> docs;
  docs.push_back(Document({fig3['F'], fig3['R']}));           // d0
  docs.push_back(Document({fig3['I'], fig3['M']}));           // d1
  docs.push_back(Document({fig3['F'], fig3['I']}));           // d2
  docs.push_back(Document({fig3['T'], fig3['V'], fig3['U']}));// d3
  docs.push_back(Document({fig3['L'], fig3['K']}));           // d4
  docs.push_back(Document({fig3['A']}));                      // d5
  docs.push_back(Document({fig3['J'], fig3['O'], fig3['P']}));// d6
  docs.push_back(Document({fig3['R'], fig3['U'], fig3['V'], fig3['Q']}));
  return Fig3World(std::move(fig3), std::move(docs));
}

TEST(KndsTest, RdsMatchesExhaustiveOnFig3) {
  Fig3World world = MakeFig3World();
  ExhaustiveRanker exhaustive(world.corpus, &world.drc);
  const std::vector<ConceptId> query = {world.fig3['F'], world.fig3['I']};
  for (const double eps : {0.0, 0.3, 0.5, 0.9, 1.0}) {
    for (const std::uint32_t k : {1u, 2u, 3u, 5u, 8u}) {
      KndsOptions options;
      options.error_threshold = eps;
      Knds knds(world.corpus, world.index, &world.drc, options);
      const auto got = knds.SearchRds(query, k);
      ASSERT_TRUE(got.ok());
      const auto want = exhaustive.TopKRelevant(query, k);
      ASSERT_TRUE(want.ok());
      ExpectSameTopK(*got, *want,
                     "eps=" + std::to_string(eps) + " k=" + std::to_string(k));
    }
  }
}

TEST(KndsTest, SdsMatchesExhaustiveOnFig3) {
  Fig3World world = MakeFig3World();
  ExhaustiveRanker exhaustive(world.corpus, &world.drc);
  const Document query_doc(
      {world.fig3['I'], world.fig3['L'], world.fig3['U']});
  for (const double eps : {0.0, 0.5, 1.0}) {
    for (const std::uint32_t k : {1u, 3u, 8u}) {
      KndsOptions options;
      options.error_threshold = eps;
      Knds knds(world.corpus, world.index, &world.drc, options);
      const auto got = knds.SearchSds(query_doc, k);
      ASSERT_TRUE(got.ok());
      const auto want = exhaustive.TopKSimilar(query_doc, k);
      ASSERT_TRUE(want.ok());
      ExpectSameTopK(*got, *want,
                     "eps=" + std::to_string(eps) + " k=" + std::to_string(k));
    }
  }
}

TEST(KndsTest, QueryDocFromCorpusRanksItselfFirst) {
  Fig3World world = MakeFig3World();
  Knds knds(world.corpus, world.index, &world.drc);
  const auto results = knds.SearchSds(world.corpus.document(3), 3);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ((*results)[0].id, 3u);
  EXPECT_DOUBLE_EQ((*results)[0].distance, 0.0);
}

TEST(KndsTest, KLargerThanCorpusReturnsEverything) {
  Fig3World world = MakeFig3World();
  Knds knds(world.corpus, world.index, &world.drc);
  const std::vector<ConceptId> query = {world.fig3['L']};
  const auto results = knds.SearchRds(query, 100);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), world.corpus.num_documents());
}

TEST(KndsTest, KZeroReturnsEmpty) {
  Fig3World world = MakeFig3World();
  Knds knds(world.corpus, world.index, &world.drc);
  const std::vector<ConceptId> query = {world.fig3['L']};
  const auto results = knds.SearchRds(query, 0);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(KndsTest, InvalidQueriesAreRejected) {
  Fig3World world = MakeFig3World();
  Knds knds(world.corpus, world.index, &world.drc);
  EXPECT_FALSE(knds.SearchRds({}, 3).ok());
  const std::vector<ConceptId> bad = {4242};
  EXPECT_FALSE(knds.SearchRds(bad, 3).ok());
}

TEST(KndsTest, InvalidErrorThresholdIsRejected) {
  Fig3World world = MakeFig3World();
  KndsOptions options;
  options.error_threshold = 1.5;
  Knds knds(world.corpus, world.index, &world.drc, options);
  const std::vector<ConceptId> query = {world.fig3['F']};
  EXPECT_FALSE(knds.SearchRds(query, 1).ok());
}

TEST(KndsTest, TinyQueueLimitForcesExaminationButStaysCorrect) {
  Fig3World world = MakeFig3World();
  ExhaustiveRanker exhaustive(world.corpus, &world.drc);
  KndsOptions options;
  options.node_queue_limit = 1;  // Force-examine on every level.
  options.error_threshold = 0.0;
  Knds knds(world.corpus, world.index, &world.drc, options);
  const std::vector<ConceptId> query = {world.fig3['F'], world.fig3['I']};
  const auto got = knds.SearchRds(query, 3);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(knds.last_stats().queue_limit_hits, 0u);
  const auto want = exhaustive.TopKRelevant(query, 3);
  ASSERT_TRUE(want.ok());
  ExpectSameTopK(*got, *want, "queue-limit");
}

TEST(KndsTest, OptimizationTogglesPreserveResults) {
  Fig3World world = MakeFig3World();
  ExhaustiveRanker exhaustive(world.corpus, &world.drc);
  const std::vector<ConceptId> query = {world.fig3['F'], world.fig3['U']};
  const auto want = exhaustive.TopKRelevant(query, 3);
  ASSERT_TRUE(want.ok());
  for (const bool prune : {false, true}) {
    for (const bool heap : {false, true}) {
      for (const bool shortcut : {false, true}) {
        KndsOptions options;
        options.prune_candidates = prune;
        options.partial_candidate_heap = heap;
        options.covered_distance_shortcut = shortcut;
        Knds knds(world.corpus, world.index, &world.drc, options);
        const auto got = knds.SearchRds(query, 3);
        ASSERT_TRUE(got.ok());
        ExpectSameTopK(*got, *want,
                       "prune=" + std::to_string(prune) +
                           " heap=" + std::to_string(heap) +
                           " shortcut=" + std::to_string(shortcut));
      }
    }
  }
}

TEST(KndsTest, CoveredShortcutAgreesWithDrc) {
  // eps=0 waits for full coverage, so with the shortcut ON, no DRC call
  // should be needed for RDS, and results must still match.
  Fig3World world = MakeFig3World();
  const std::vector<ConceptId> query = {world.fig3['F'], world.fig3['I']};
  KndsOptions options;
  options.error_threshold = 0.0;
  options.covered_distance_shortcut = true;
  Knds with_shortcut(world.corpus, world.index, &world.drc, options);
  const auto got_shortcut = with_shortcut.SearchRds(query, 4);
  ASSERT_TRUE(got_shortcut.ok());
  EXPECT_EQ(with_shortcut.last_stats().drc_calls, 0u);

  options.covered_distance_shortcut = false;
  Knds without_shortcut(world.corpus, world.index, &world.drc, options);
  const auto got_drc = without_shortcut.SearchRds(query, 4);
  ASSERT_TRUE(got_drc.ok());
  EXPECT_GT(without_shortcut.last_stats().drc_calls, 0u);
  ExpectSameTopK(*got_shortcut, *got_drc, "shortcut-vs-drc");
}

TEST(KndsTest, ProgressiveOutputStreamsFinalResultsInOrder) {
  Fig3World world = MakeFig3World();
  Knds knds(world.corpus, world.index, &world.drc);
  std::vector<ScoredDocument> streamed;
  knds.set_progress_callback(
      [&](const ScoredDocument& scored) { streamed.push_back(scored); });
  const std::vector<ConceptId> query = {world.fig3['F'], world.fig3['I']};
  const auto results = knds.SearchRds(query, 4);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(streamed.size(), results->size());
  // Every result is emitted exactly once; distances arrive nondecreasing.
  for (std::size_t i = 0; i + 1 < streamed.size(); ++i) {
    EXPECT_LE(streamed[i].distance, streamed[i + 1].distance);
  }
  std::vector<double> streamed_d = Distances(streamed);
  std::vector<double> result_d = Distances(*results);
  std::sort(streamed_d.begin(), streamed_d.end());
  std::sort(result_d.begin(), result_d.end());
  EXPECT_EQ(streamed_d, result_d);
}

TEST(KndsTest, IncrementalDocumentInsertionIsSearchable) {
  // The paper's on-the-fly update story: add an EMR, update the inverted
  // index, and the next query sees it — no precomputation.
  Fig3World world = MakeFig3World();
  Knds knds(world.corpus, world.index, &world.drc);
  const std::vector<ConceptId> query = {world.fig3['N']};
  const auto before = knds.SearchRds(query, 1);
  ASSERT_TRUE(before.ok());

  const auto id = world.corpus.AddDocument(Document({world.fig3['N']}));
  ASSERT_TRUE(id.ok());
  world.index.AddDocument(*id, world.corpus.document(*id));

  const auto after = knds.SearchRds(query, 1);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ((*after)[0].id, *id);
  EXPECT_DOUBLE_EQ((*after)[0].distance, 0.0);
  EXPECT_LT((*after)[0].distance, (*before)[0].distance);
}

TEST(KndsTest, StatsAreCoherent) {
  Fig3World world = MakeFig3World();
  Knds knds(world.corpus, world.index, &world.drc);
  const std::vector<ConceptId> query = {world.fig3['F'], world.fig3['I']};
  const auto results = knds.SearchRds(query, 2);
  ASSERT_TRUE(results.ok());
  const KndsStats& stats = knds.last_stats();
  EXPECT_GE(stats.documents_examined, results->size());
  EXPECT_LE(stats.documents_examined, world.corpus.num_documents());
  EXPECT_LE(stats.documents_touched, world.corpus.num_documents());
  EXPECT_GT(stats.levels, 0u);
  EXPECT_GT(stats.concept_visits, 0u);
  EXPECT_GE(stats.total_seconds, stats.distance_seconds);
}

// Property suite: kNDS == exhaustive on randomly generated worlds across
// the whole option space. One parameter seeds everything.
struct RandomWorldParam {
  std::uint64_t seed;
  double eps;
  std::uint32_t k;
  bool sds;
};

class KndsRandomWorldTest
    : public ::testing::TestWithParam<RandomWorldParam> {};

TEST_P(KndsRandomWorldTest, MatchesExhaustive) {
  const RandomWorldParam param = GetParam();
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 400;
  ontology_config.extra_parent_prob = 0.25;
  ontology_config.seed = param.seed;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());

  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 60;
  corpus_config.avg_concepts_per_doc = 12;
  corpus_config.cohesion = 0.5;
  corpus_config.clusters_per_doc = 2;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = param.seed + 1;
  auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());

  AddressEnumerator enumerator(*ontology);
  Drc drc(*ontology, &enumerator);
  index::InvertedIndex index(*corpus);
  ExhaustiveRanker exhaustive(*corpus, &drc);
  KndsOptions options;
  options.error_threshold = param.eps;
  Knds knds(*corpus, index, &drc, options);

  if (param.sds) {
    const auto query_docs = corpus::SampleQueryDocuments(*corpus, 3,
                                                         param.seed + 2);
    for (const DocId q : query_docs) {
      const Document& query_doc = corpus->document(q);
      const auto got = knds.SearchSds(query_doc, param.k);
      ASSERT_TRUE(got.ok());
      const auto want = exhaustive.TopKSimilar(query_doc, param.k);
      ASSERT_TRUE(want.ok());
      ExpectSameTopK(*got, *want, "sds seed=" + std::to_string(param.seed));
    }
  } else {
    const auto queries = corpus::GenerateRdsQueries(*corpus, 3, 4,
                                                    param.seed + 2);
    for (const auto& query : queries) {
      const auto got = knds.SearchRds(query, param.k);
      ASSERT_TRUE(got.ok());
      const auto want = exhaustive.TopKRelevant(query, param.k);
      ASSERT_TRUE(want.ok());
      ExpectSameTopK(*got, *want, "rds seed=" + std::to_string(param.seed));
    }
  }
}

// Independent end-to-end check: every distance kNDS returns must equal
// the brute-force oracle's value for that document (exhaustive-DRC
// comparisons alone would not catch a bug shared by kNDS and DRC).
class KndsOracleDistanceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KndsOracleDistanceTest, ReturnedDistancesMatchOracle) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 350;
  ontology_config.extra_parent_prob = 0.3;
  ontology_config.seed = GetParam();
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 70;
  corpus_config.avg_concepts_per_doc = 9;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = GetParam() + 1;
  const auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());
  AddressEnumerator enumerator(*ontology);
  Drc drc(*ontology, &enumerator);
  index::InvertedIndex index(*corpus);
  Knds knds(*corpus, index, &drc);
  ontology::DistanceOracle oracle(*ontology);

  for (const auto& query :
       corpus::GenerateRdsQueries(*corpus, 3, 4, GetParam() + 2)) {
    const auto results = knds.SearchRds(query, 6);
    ASSERT_TRUE(results.ok());
    for (const auto& result : *results) {
      EXPECT_DOUBLE_EQ(result.distance,
                       static_cast<double>(oracle.DocQueryDistance(
                           corpus->document(result.id).concepts(), query)));
    }
  }
  for (const DocId q :
       corpus::SampleQueryDocuments(*corpus, 2, GetParam() + 3)) {
    const auto results = knds.SearchSds(corpus->document(q), 6);
    ASSERT_TRUE(results.ok());
    for (const auto& result : *results) {
      EXPECT_DOUBLE_EQ(result.distance,
                       oracle.DocDocDistance(
                           corpus->document(q).concepts(),
                           corpus->document(result.id).concepts()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KndsOracleDistanceTest,
                         ::testing::Values(501, 502, 503, 504, 505, 506, 507,
                                           508));

INSTANTIATE_TEST_SUITE_P(
    RandomWorlds, KndsRandomWorldTest,
    ::testing::Values(
        RandomWorldParam{201, 0.0, 3, false},
        RandomWorldParam{202, 0.5, 3, false},
        RandomWorldParam{203, 1.0, 3, false},
        RandomWorldParam{204, 0.25, 10, false},
        RandomWorldParam{205, 0.75, 1, false},
        RandomWorldParam{206, 0.9, 25, false},
        RandomWorldParam{207, 0.0, 3, true},
        RandomWorldParam{208, 0.5, 3, true},
        RandomWorldParam{209, 1.0, 3, true},
        RandomWorldParam{210, 0.25, 10, true},
        RandomWorldParam{211, 0.75, 1, true},
        RandomWorldParam{212, 0.9, 25, true}));

// Anytime contract, progressive side: results emitted through the
// progress callback before a cancellation fires must be a prefix of the
// uncancelled run's emission sequence — cancellation may only cut the
// stream short, never reorder or alter what was already final.
TEST(KndsAnytimeTest, ProgressiveOutputUnderCancellationIsPrefix) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 350;
  ontology_config.extra_parent_prob = 0.25;
  ontology_config.seed = 901;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 80;
  corpus_config.avg_concepts_per_doc = 10;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = 902;
  const auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());
  AddressEnumerator enumerator(*ontology);
  index::InvertedIndex index(*corpus);
  const auto query = corpus::GenerateRdsQueries(*corpus, 1, 4, 903).front();
  constexpr std::uint32_t kK = 8;

  // Baseline: uncancelled run, recording the emission order and the
  // total fault-injector op count so the sweep can cover every op.
  std::vector<DocId> baseline;
  std::uint64_t total_ops = 0;
  {
    util::FaultInjector injector({});
    Drc drc(*ontology, &enumerator);
    KndsOptions options;
    options.fault_injector = &injector;
    Knds knds(*corpus, index, &drc, options);
    knds.set_progress_callback(
        [&](const ScoredDocument& doc) { baseline.push_back(doc.id); });
    ASSERT_TRUE(knds.SearchRds(query, kK).ok());
    total_ops = injector.ops();
  }
  ASSERT_FALSE(baseline.empty());
  ASSERT_GT(total_ops, 0u);

  // Stride the sweep to ~50 cancellation points (dense early, where the
  // candidate set is still forming) to keep the test fast.
  const std::uint64_t step = std::max<std::uint64_t>(1, total_ops / 50);
  for (std::uint64_t cancel_at = 1; cancel_at <= total_ops;
       cancel_at += (cancel_at < 10 ? 1 : step)) {
    util::CancelToken token;
    util::FaultInjectorOptions fault_options;
    fault_options.cancel_at_op = cancel_at;
    util::FaultInjector injector(fault_options, &token);
    Drc drc(*ontology, &enumerator);
    KndsOptions options;
    options.cancel_token = &token;
    options.fault_injector = &injector;
    Knds knds(*corpus, index, &drc, options);
    std::vector<DocId> emitted;
    knds.set_progress_callback(
        [&](const ScoredDocument& doc) { emitted.push_back(doc.id); });
    const auto results = knds.SearchRds(query, kK);
    ASSERT_TRUE(results.ok()) << "cancel_at=" << cancel_at;
    ASSERT_LE(emitted.size(), baseline.size()) << "cancel_at=" << cancel_at;
    for (std::size_t i = 0; i < emitted.size(); ++i) {
      EXPECT_EQ(emitted[i], baseline[i])
          << "cancel_at=" << cancel_at << " position " << i;
    }
    // A truncated run reports it; an untruncated run matched baseline.
    if (!knds.last_stats().truncated) {
      EXPECT_EQ(emitted.size(), baseline.size())
          << "cancel_at=" << cancel_at;
    } else {
      EXPECT_TRUE(knds.last_stats().cancelled) << "cancel_at=" << cancel_at;
    }
  }
}

}  // namespace
}  // namespace ecdr::core
