// Concurrency contract (see DESIGN.md, "Threading model"): the Ontology,
// Corpus and InvertedIndex are immutable after construction and safely
// shared across threads; AddressEnumerator serializes on an internal
// mutex while warming and becomes lock-free once frozen via
// PrecomputeAll(); Drc / Knds hold per-query mutable state and must be
// per-thread (or per-call). RankingEngine layers a reader/writer lock on
// top so any number of Find* calls may race one AddDocument writer.
// These tests cover all three layers, plus the determinism guarantee:
// kNDS returns bit-identical results at any KndsOptions::num_threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "core/drc.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "core/ranking_engine.h"
#include "core/ta_ranker.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "index/inverted_index.h"
#include "index/precomputed_postings.h"
#include "ontology/generator.h"

namespace ecdr::core {
namespace {

ontology::Ontology MakeOntology(std::uint64_t seed, std::uint32_t concepts) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = concepts;
  config.seed = seed;
  auto ontology = ontology::GenerateOntology(config);
  EXPECT_TRUE(ontology.ok());
  return std::move(ontology).value();
}

corpus::Corpus MakeCorpus(const ontology::Ontology& ontology,
                          std::uint64_t seed, std::uint32_t docs) {
  corpus::CorpusGeneratorConfig config;
  config.num_documents = docs;
  config.avg_concepts_per_doc = 20;
  config.seed = seed;
  auto corpus = corpus::GenerateCorpus(ontology, config);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

void ExpectSameResults(const std::vector<ScoredDocument>& a,
                       const std::vector<ScoredDocument>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "rank " << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << "rank " << i;
  }
}

TEST(ConcurrencyTest, PerThreadEnginesOverSharedIndexesAgree) {
  const auto ontology = MakeOntology(90, 2'000);
  const auto corpus = MakeCorpus(ontology, 91, 150);
  const index::InvertedIndex index(corpus);

  const auto queries = corpus::GenerateRdsQueries(corpus, 12, 4, 92);

  // Serial reference results.
  std::vector<std::vector<ScoredDocument>> expected;
  {
    ontology::AddressEnumerator enumerator(ontology);
    Drc drc(ontology, &enumerator);
    Knds knds(corpus, index, &drc);
    for (const auto& query : queries) {
      const auto results = knds.SearchRds(query, 5);
      ASSERT_TRUE(results.ok());
      expected.push_back(*results);
    }
  }

  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      // Per-thread mutable machinery over the shared read-only corpus,
      // index and ontology.
      ontology::AddressEnumerator enumerator(ontology);
      Drc drc(ontology, &enumerator);
      Knds knds(corpus, index, &drc);
      // Stagger which query each thread starts with.
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const std::size_t index_q = (q + t) % queries.size();
        const auto results = knds.SearchRds(queries[index_q], 5);
        if (!results.ok() ||
            results->size() != expected[index_q].size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t i = 0; i < results->size(); ++i) {
          if ((*results)[i].distance != expected[index_q][i].distance) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// A frozen AddressEnumerator shared by per-thread Drc engines must
// produce the same distances as per-thread enumerators (the engine's
// internal sharing pattern, tested without the engine's locks).
TEST(ConcurrencyTest, SharedFrozenAddressEnumeratorAgrees) {
  const auto ontology = MakeOntology(80, 1'500);
  const auto corpus = MakeCorpus(ontology, 81, 100);
  const index::InvertedIndex index(corpus);
  const auto queries = corpus::GenerateRdsQueries(corpus, 8, 3, 82);

  std::vector<std::vector<ScoredDocument>> expected;
  {
    ontology::AddressEnumerator enumerator(ontology);
    Drc drc(ontology, &enumerator);
    Knds knds(corpus, index, &drc);
    for (const auto& query : queries) {
      const auto results = knds.SearchRds(query, 5);
      ASSERT_TRUE(results.ok());
      expected.push_back(*results);
    }
  }

  ontology::AddressEnumerator shared(ontology);
  shared.PrecomputeAll();
  ASSERT_TRUE(shared.frozen());

  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Drc drc(ontology, &shared);
      Knds knds(corpus, index, &drc);
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const std::size_t index_q = (q + t) % queries.size();
        const auto results = knds.SearchRds(queries[index_q], 5);
        if (!results.ok()) {
          ++mismatches;
          continue;
        }
        for (std::size_t i = 0; i < results->size(); ++i) {
          if ((*results)[i].id != expected[index_q][i].id ||
              (*results)[i].distance != expected[index_q][i].distance) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// kNDS determinism: num_threads = 1 and num_threads = 8 must return
// identical top-k ids AND distances, for RDS, weighted RDS and SDS. The
// speculative-wave design also keeps DRC consumption identical (every
// exact distance the serial replay uses is either memoized or computed
// in the same order), so drc_calls must match too.
TEST(ConcurrencyTest, ParallelKndsMatchesSerialBitForBit) {
  const auto ontology = MakeOntology(70, 2'500);
  const auto corpus = MakeCorpus(ontology, 71, 200);
  const index::InvertedIndex index(corpus);
  const auto queries = corpus::GenerateRdsQueries(corpus, 10, 4, 72);

  ontology::AddressEnumerator enumerator(ontology);
  enumerator.PrecomputeAll();

  KndsOptions serial_options;
  serial_options.num_threads = 1;
  KndsOptions parallel_options;
  parallel_options.num_threads = 8;

  for (const std::uint32_t k : {1u, 5u, 20u}) {
    for (const auto& query : queries) {
      Drc serial_drc(ontology, &enumerator);
      Knds serial(corpus, index, &serial_drc, serial_options);
      const auto want = serial.SearchRds(query, k);
      ASSERT_TRUE(want.ok());

      Drc parallel_drc(ontology, &enumerator);
      Knds parallel(corpus, index, &parallel_drc, parallel_options);
      const auto got = parallel.SearchRds(query, k);
      ASSERT_TRUE(got.ok());

      ExpectSameResults(*want, *got);
      EXPECT_EQ(serial.last_stats().drc_calls, parallel.last_stats().drc_calls);
      EXPECT_EQ(serial.last_stats().documents_examined,
                parallel.last_stats().documents_examined);
    }
  }

  // SDS: each of the first few documents queried against the rest.
  for (corpus::DocId d = 0; d < 5; ++d) {
    Drc serial_drc(ontology, &enumerator);
    Knds serial(corpus, index, &serial_drc, serial_options);
    const auto want = serial.SearchSds(corpus.document(d), 10);
    ASSERT_TRUE(want.ok());

    Drc parallel_drc(ontology, &enumerator);
    Knds parallel(corpus, index, &parallel_drc, parallel_options);
    const auto got = parallel.SearchSds(corpus.document(d), 10);
    ASSERT_TRUE(got.ok());

    ExpectSameResults(*want, *got);
    EXPECT_EQ(serial.last_stats().drc_calls, parallel.last_stats().drc_calls);
  }
}

// Baseline rankers: sharded scoring must not change the top-k (the
// (distance, id) total order is scan-order independent).
TEST(ConcurrencyTest, ParallelBaselinesMatchSerial) {
  const auto ontology = MakeOntology(60, 1'500);
  const auto corpus = MakeCorpus(ontology, 61, 120);
  const auto queries = corpus::GenerateRdsQueries(corpus, 6, 3, 62);

  ontology::AddressEnumerator enumerator(ontology);
  enumerator.PrecomputeAll();

  ExhaustiveRankerOptions serial_options;
  serial_options.num_threads = 1;
  ExhaustiveRankerOptions parallel_options;
  parallel_options.num_threads = 8;

  Drc serial_drc(ontology, &enumerator);
  ExhaustiveRanker serial(corpus, &serial_drc, serial_options);
  Drc parallel_drc(ontology, &enumerator);
  ExhaustiveRanker parallel(corpus, &parallel_drc, parallel_options);

  for (const auto& query : queries) {
    const auto want = serial.TopKRelevant(query, 10);
    ASSERT_TRUE(want.ok());
    const auto got = parallel.TopKRelevant(query, 10);
    ASSERT_TRUE(got.ok());
    ExpectSameResults(*want, *got);
    EXPECT_EQ(serial.last_stats().documents_scored,
              parallel.last_stats().documents_scored);

    const auto want_sds = serial.TopKSimilar(corpus.document(0), 10);
    ASSERT_TRUE(want_sds.ok());
    const auto got_sds = parallel.TopKSimilar(corpus.document(0), 10);
    ASSERT_TRUE(got_sds.ok());
    ExpectSameResults(*want_sds, *got_sds);
  }

  // TA over precomputed postings: parallel random accesses, same top-k.
  const index::PrecomputedPostings postings(corpus);
  TaRankerOptions ta_serial_options;
  ta_serial_options.num_threads = 1;
  TaRankerOptions ta_parallel_options;
  ta_parallel_options.num_threads = 8;
  TaRanker ta_serial(corpus, postings, ta_serial_options);
  TaRanker ta_parallel(corpus, postings, ta_parallel_options);
  for (const auto& query : queries) {
    const auto want = ta_serial.TopKRelevant(query, 10);
    ASSERT_TRUE(want.ok());
    const auto got = ta_parallel.TopKRelevant(query, 10);
    ASSERT_TRUE(got.ok());
    ExpectSameResults(*want, *got);
  }
}

// RankingEngine reader/writer contract: N threads hammer FindRelevant /
// FindSimilar while a writer thread keeps calling AddDocument. Every
// search must succeed, and searches launched after an insert completes
// must see a consistent corpus (no torn index state). Readers run a
// fixed number of iterations — glibc's rwlock prefers readers, so a
// stop-flag driven by writer completion could starve the writer forever
// on a loaded machine.
TEST(ConcurrencyTest, SearchesRaceOneWriterSafely) {
  auto ontology = MakeOntology(50, 1'500);
  const auto seed_docs = MakeCorpus(ontology, 51, 80);
  const auto extra_docs = MakeCorpus(ontology, 52, 60);
  const auto queries = corpus::GenerateRdsQueries(seed_docs, 6, 3, 53);

  RankingEngineOptions options;
  options.knds.num_threads = 4;  // Exercise the shared pool under racing.
  auto engine = RankingEngine::Create(std::move(ontology), options);

  for (corpus::DocId d = 0; d < seed_docs.num_documents(); ++d) {
    const auto& concepts = seed_docs.document(d).concepts();
    const auto added = engine->AddDocument(
        std::vector<ontology::ConceptId>(concepts.begin(), concepts.end()));
    ASSERT_TRUE(added.ok());
  }

  constexpr int kReaders = 4;
  constexpr int kIterationsPerReader = 25;
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> searches{0};

  // Writer on its own thread; it may be held off while readers hold the
  // shared lock but always finishes once the finite readers drain.
  std::thread writer([&]() {
    for (corpus::DocId d = 0; d < extra_docs.num_documents(); ++d) {
      const auto& concepts = extra_docs.document(d).concepts();
      const auto added = engine->AddDocument(
          std::vector<ontology::ConceptId>(concepts.begin(), concepts.end()));
      if (!added.ok()) ++failures;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      std::size_t q = static_cast<std::size_t>(t);
      for (int iter = 0; iter < kIterationsPerReader; ++iter) {
        const auto relevant =
            engine->FindRelevant(queries[q % queries.size()], 5);
        if (!relevant.ok() || relevant->empty()) ++failures;
        const auto similar =
            engine->FindSimilar(static_cast<corpus::DocId>(q % 20), 5);
        if (!similar.ok()) ++failures;
        ++q;
        ++searches;
      }
    });
  }

  for (auto& reader : readers) reader.join();
  writer.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(searches.load(),
            static_cast<std::uint64_t>(kReaders) * kIterationsPerReader);
  EXPECT_EQ(engine->corpus().num_documents(),
            seed_docs.num_documents() + extra_docs.num_documents());

  // Post-race search sees every inserted document as a candidate pool.
  const auto final_results = engine->FindRelevant(queries[0], 5);
  ASSERT_TRUE(final_results.ok());
  EXPECT_FALSE(final_results->empty());
}

}  // namespace
}  // namespace ecdr::core
