// Concurrency contract: the Ontology, Corpus and InvertedIndex are
// immutable after construction and safely shared across threads, while
// AddressEnumerator / Drc / Knds hold per-query mutable state and must
// be per-thread. This test runs one kNDS engine per thread over shared
// read-only structures and checks every thread reproduces the serial
// results.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/drc.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "index/inverted_index.h"
#include "ontology/generator.h"

namespace ecdr::core {
namespace {

TEST(ConcurrencyTest, PerThreadEnginesOverSharedIndexesAgree) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 2'000;
  ontology_config.seed = 90;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 150;
  corpus_config.avg_concepts_per_doc = 20;
  corpus_config.seed = 91;
  const auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());
  const index::InvertedIndex index(*corpus);

  const auto queries = corpus::GenerateRdsQueries(*corpus, 12, 4, 92);

  // Serial reference results.
  std::vector<std::vector<ScoredDocument>> expected;
  {
    ontology::AddressEnumerator enumerator(*ontology);
    Drc drc(*ontology, &enumerator);
    Knds knds(*corpus, index, &drc);
    for (const auto& query : queries) {
      const auto results = knds.SearchRds(query, 5);
      ASSERT_TRUE(results.ok());
      expected.push_back(*results);
    }
  }

  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      // Per-thread mutable machinery over the shared read-only corpus,
      // index and ontology.
      ontology::AddressEnumerator enumerator(*ontology);
      Drc drc(*ontology, &enumerator);
      Knds knds(*corpus, index, &drc);
      // Stagger which query each thread starts with.
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const std::size_t index_q = (q + t) % queries.size();
        const auto results = knds.SearchRds(queries[index_q], 5);
        if (!results.ok() ||
            results->size() != expected[index_q].size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t i = 0; i < results->size(); ++i) {
          if ((*results)[i].distance != expected[index_q][i].distance) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ecdr::core
