// Minimal blocking HTTP client for the serve tests: one request per
// connection (Connection: close), response read to EOF and checked
// against its own Content-Length so a torn response is detected, not
// silently half-parsed.

#ifndef ECDR_TESTS_SERVE_TEST_UTIL_H_
#define ECDR_TESTS_SERVE_TEST_UTIL_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace ecdr::serve_test {

struct HttpResponse {
  bool transport_ok = false;  // connected, wrote, read a response head
  bool complete = false;      // body length matches Content-Length
  int status = 0;
  std::string body;
};

/// Sends `raw` to 127.0.0.1:`port` on a fresh connection and reads to
/// EOF.
inline HttpResponse SendRaw(std::uint16_t port, const std::string& raw) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return response;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return response;
  }
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n =
        ::send(fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // The server may legitimately reset mid-upload after rejecting
      // the request (e.g. oversized body); fall through and try to
      // read the error response it wrote first.
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string wire;
  char buffer[16384];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      wire.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);

  if (wire.rfind("HTTP/1.", 0) != 0 || wire.size() < 12) return response;
  response.transport_ok = true;
  response.status = std::atoi(wire.c_str() + 9);
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) return response;
  response.body = wire.substr(head_end + 4);
  const std::size_t cl_pos = wire.find("Content-Length: ");
  if (cl_pos != std::string::npos && cl_pos < head_end) {
    const std::size_t want = static_cast<std::size_t>(
        std::atoll(wire.c_str() + cl_pos + 16));
    response.complete = response.body.size() == want;
  }
  return response;
}

inline HttpResponse PostJson(std::uint16_t port, const std::string& target,
                             const std::string& body) {
  return SendRaw(port, "POST " + target +
                           " HTTP/1.1\r\nHost: t\r\nContent-Type: "
                           "application/json\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body);
}

inline HttpResponse Get(std::uint16_t port, const std::string& target) {
  return SendRaw(port, "GET " + target +
                           " HTTP/1.1\r\nHost: t\r\nConnection: "
                           "close\r\n\r\n");
}

}  // namespace ecdr::serve_test

#endif  // ECDR_TESTS_SERVE_TEST_UTIL_H_
