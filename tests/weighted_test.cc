// Tests for the weighted distance / ranking extensions
// (core/concept_weights.h): weighted DRC against hand computations and
// the oracle, weighted kNDS against the weighted exhaustive ranker.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/concept_weights.h"
#include "core/drc.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "util/random.h"
#include "index/inverted_index.h"
#include "ontology/distance_oracle.h"
#include "ontology/generator.h"
#include "tests/fig3_fixture.h"

namespace ecdr::core {
namespace {

using corpus::Corpus;
using corpus::DocId;
using corpus::Document;
using ontology::AddressEnumerator;
using ontology::ConceptId;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

TEST(ConceptWeightsTest, UniformIsAllOnes) {
  const Fig3 fig3 = MakeFig3Ontology();
  const ConceptWeights weights = ConceptWeights::Uniform(fig3.ontology);
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    EXPECT_DOUBLE_EQ(weights.of(c), 1.0);
  }
  const std::vector<ConceptId> some = {fig3['F'], fig3['R']};
  EXPECT_DOUBLE_EQ(weights.TotalOf(some), 2.0);
}

TEST(ConceptWeightsTest, InformationContentWeightsFavorSpecificConcepts) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['R'], fig3['U']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['V']})).ok());
  const ConceptWeights weights =
      ConceptWeights::FromInformationContent(fig3.ontology, corpus);
  // The root gets the floor weight of 1; deep leaves weigh more.
  EXPECT_DOUBLE_EQ(weights.of(fig3['A']), 1.0);
  EXPECT_GT(weights.of(fig3['U']), weights.of(fig3['A']));
  EXPECT_GT(weights.of(fig3['U']), weights.of(fig3['J']));
}

TEST(WeightedDrcTest, PaperExample1WithWeights) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  // Example 1 distances: Ddc(d, I) = 4, Ddc(d, L) = 2, Ddc(d, U) = 1.
  const std::vector<WeightedConcept> q = {
      {fig3['I'], 2.0}, {fig3['L'], 0.5}, {fig3['U'], 3.0}};
  const auto distance = drc.DocQueryDistanceWeighted(d, q);
  ASSERT_TRUE(distance.ok());
  EXPECT_DOUBLE_EQ(*distance, 2.0 * 4 + 0.5 * 2 + 3.0 * 1);
}

TEST(WeightedDrcTest, UniformWeightsReduceToUnweighted) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  std::vector<WeightedConcept> weighted;
  for (ConceptId c : q) weighted.push_back({c, 1.0});
  EXPECT_DOUBLE_EQ(*drc.DocQueryDistanceWeighted(d, weighted),
                   static_cast<double>(*drc.DocQueryDistance(d, q)));
  const ConceptWeights uniform = ConceptWeights::Uniform(fig3.ontology);
  EXPECT_DOUBLE_EQ(*drc.DocDocDistanceWeighted(d, q, uniform),
                   *drc.DocDocDistance(d, q));
}

TEST(WeightedDrcTest, DuplicateConceptsKeepLargestWeight) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F']};
  const std::vector<WeightedConcept> q = {
      {fig3['L'], 0.25}, {fig3['L'], 0.75}};
  // Ddc(d, L) = 2; max weight 0.75 applies once.
  EXPECT_DOUBLE_EQ(*drc.DocQueryDistanceWeighted(d, q), 1.5);
}

TEST(WeightedDrcTest, WeightedDddMatchesHandComputation) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  // Weight everything 1 except R (weight 3) and I (weight 2).
  std::vector<double> raw(fig3.ontology.num_concepts(), 1.0);
  raw[fig3['R']] = 3.0;
  raw[fig3['I']] = 2.0;
  const ConceptWeights weights{std::move(raw)};
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  // Ddc(q, .): F=2 R=1 T=4 V=5; Ddc(d, .): I=4 L=2 U=1.
  const double expected =
      (1 * 2 + 3 * 1 + 1 * 4 + 1 * 5) / (1 + 3 + 1 + 1.0) +
      (2 * 4 + 1 * 2 + 1 * 1) / (2 + 1 + 1.0);
  EXPECT_DOUBLE_EQ(*drc.DocDocDistanceWeighted(d, q, weights), expected);
}

TEST(QueryNormalizationTest, SortsDedupsAndKeepsMaxWeight) {
  const std::vector<WeightedConcept> raw = {
      {7, 0.5}, {3, 1.0}, {7, 0.9}, {3, 0.2}};
  const auto normalized = NormalizeWeightedConcepts(raw);
  ASSERT_EQ(normalized.size(), 2u);
  EXPECT_EQ(normalized[0].concept_id, 3u);
  EXPECT_DOUBLE_EQ(normalized[0].weight, 1.0);
  EXPECT_EQ(normalized[1].concept_id, 7u);
  EXPECT_DOUBLE_EQ(normalized[1].weight, 0.9);
}

// Property: weighted kNDS == weighted exhaustive on random worlds.
class WeightedKndsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedKndsTest, MatchesWeightedExhaustive) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 300;
  ontology_config.extra_parent_prob = 0.25;
  ontology_config.seed = GetParam();
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 50;
  corpus_config.avg_concepts_per_doc = 10;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = GetParam() + 1;
  const auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());

  AddressEnumerator enumerator(*ontology);
  Drc drc(*ontology, &enumerator);
  index::InvertedIndex index(*corpus);
  ExhaustiveRanker exhaustive(*corpus, &drc);
  util::Rng rng(GetParam() + 2);

  // Weighted RDS across error thresholds.
  for (const double eps : {0.0, 0.5, 1.0}) {
    KndsOptions options;
    options.error_threshold = eps;
    Knds knds(*corpus, index, &drc, options);
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<WeightedConcept> query;
      for (ConceptId c :
           rng.SampleWithoutReplacement(ontology->num_concepts(), 4)) {
        query.push_back(WeightedConcept{c, 0.25 + rng.UniformDouble() * 2.0});
      }
      const auto got = knds.SearchRdsWeighted(query, 5);
      ASSERT_TRUE(got.ok());
      const auto want = exhaustive.TopKRelevantWeighted(query, 5);
      ASSERT_TRUE(want.ok());
      ASSERT_EQ(got->size(), want->size());
      for (std::size_t i = 0; i < got->size(); ++i) {
        EXPECT_NEAR((*got)[i].distance, (*want)[i].distance, 1e-9)
            << "eps=" << eps << " i=" << i;
      }
    }
  }

  // Weighted SDS with information-content weights.
  const ConceptWeights ic_weights =
      ConceptWeights::FromInformationContent(*ontology, *corpus);
  Knds knds(*corpus, index, &drc);
  for (const DocId q : corpus::SampleQueryDocuments(*corpus, 2,
                                                    GetParam() + 3)) {
    const auto got =
        knds.SearchSdsWeighted(corpus->document(q), ic_weights, 5);
    ASSERT_TRUE(got.ok());
    const auto want =
        exhaustive.TopKSimilarWeighted(corpus->document(q), ic_weights, 5);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->size(), want->size());
    for (std::size_t i = 0; i < got->size(); ++i) {
      EXPECT_NEAR((*got)[i].distance, (*want)[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedKndsTest,
                         ::testing::Values(401, 402, 403, 404, 405, 406));

TEST(WeightedKndsTest, RejectsNonPositiveWeights) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F']})).ok());
  index::InvertedIndex index(corpus);
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  Knds knds(corpus, index, &drc);
  const std::vector<WeightedConcept> query = {{fig3['L'], 0.0}};
  EXPECT_FALSE(knds.SearchRdsWeighted(query, 1).ok());
}

}  // namespace
}  // namespace ecdr::core
