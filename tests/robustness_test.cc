// Deterministic fault-injection suite for the anytime serving path
// (labelled `robustness`; runs under ASan+UBSan in CI). Three invariant
// families:
//
//   (a) Runs that never hit a deadline or cancel are bit-identical to a
//       plain run — at any thread count, with a live-but-idle cancel
//       token, an infinite deadline, and injected latency spikes.
//   (b) A truncated run says so (KndsStats::truncated), and every
//       reported (distance, error_bound) pair brackets the true
//       distance computed by the brute-force oracle. Fixing the
//       injector's cancellation op makes truncated runs repeatable
//       bit-for-bit.
//   (d) Admission control sheds overload with kResourceExhausted and
//       bounds queue waits by the query's deadline. ((c) — corrupt
//       input — lives in corrupt_input_test.cc.)

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/drc.h"
#include "core/knds.h"
#include "core/ranking_engine.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "index/inverted_index.h"
#include "index/sharded_index.h"
#include "ontology/distance_oracle.h"
#include "ontology/generator.h"
#include "util/deadline.h"
#include "util/fault_injector.h"

namespace ecdr::core {
namespace {

using corpus::DocId;
using ontology::AddressEnumerator;
using ontology::ConceptId;

struct World {
  std::unique_ptr<ontology::Ontology> ontology;
  std::unique_ptr<corpus::Corpus> corpus;
  std::unique_ptr<AddressEnumerator> enumerator;
  std::unique_ptr<index::InvertedIndex> index;
  std::vector<ontology::ConceptId> query;
  corpus::DocId sds_query = 0;
};

World MakeWorld(std::uint64_t seed) {
  World world;
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 300;
  ontology_config.extra_parent_prob = 0.25;
  ontology_config.seed = seed;
  auto ontology = ontology::GenerateOntology(ontology_config);
  EXPECT_TRUE(ontology.ok());
  world.ontology =
      std::make_unique<ontology::Ontology>(std::move(ontology).value());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 60;
  corpus_config.avg_concepts_per_doc = 10;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = seed + 1;
  auto corpus = corpus::GenerateCorpus(*world.ontology, corpus_config);
  EXPECT_TRUE(corpus.ok());
  world.corpus = std::make_unique<corpus::Corpus>(std::move(corpus).value());
  world.enumerator = std::make_unique<AddressEnumerator>(*world.ontology);
  world.index = std::make_unique<index::InvertedIndex>(*world.corpus);
  world.query =
      corpus::GenerateRdsQueries(*world.corpus, 1, 4, seed + 2).front();
  world.sds_query =
      corpus::SampleQueryDocuments(*world.corpus, 1, seed + 3).front();
  return world;
}

void ExpectBitIdentical(const std::vector<ScoredDocument>& got,
                        const std::vector<ScoredDocument>& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " position " << i;
    EXPECT_EQ(got[i].distance, want[i].distance)
        << context << " position " << i;
    EXPECT_EQ(got[i].error_bound, want[i].error_bound)
        << context << " position " << i;
  }
}

class RobustnessSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

// (a) The deadline/cancellation/fault plumbing is inert until it fires:
// a token that never cancels, an infinite deadline, injected latency
// spikes, and 8-lane parallel verification all return the plain serial
// run's results bit-for-bit.
TEST_P(RobustnessSeedTest, UnfiredControlsAreBitIdenticalAtAnyThreadCount) {
  const std::uint64_t seed = GetParam();
  const World world = MakeWorld(seed);
  constexpr std::uint32_t kK = 10;

  std::vector<ScoredDocument> baseline_rds;
  std::vector<ScoredDocument> baseline_sds;
  {
    Drc drc(*world.ontology, world.enumerator.get());
    KndsOptions options;
    options.num_threads = 1;
    Knds knds(*world.corpus, *world.index, &drc, options);
    auto rds = knds.SearchRds(world.query, kK);
    ASSERT_TRUE(rds.ok());
    baseline_rds = std::move(rds).value();
    auto sds = knds.SearchSds(world.corpus->document(world.sds_query), kK);
    ASSERT_TRUE(sds.ok());
    baseline_sds = std::move(sds).value();
  }
  for (const ScoredDocument& scored : baseline_rds) {
    EXPECT_EQ(scored.error_bound, 0.0);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    util::CancelToken token;  // Present but never cancelled.
    util::FaultInjectorOptions fault_options;
    fault_options.seed = seed;
    fault_options.postings_delay_probability = 0.25;
    fault_options.postings_delay_seconds = 2e-6;
    fault_options.drc_delay_probability = 0.25;
    fault_options.drc_delay_seconds = 2e-6;
    util::FaultInjector injector(fault_options, &token);
    Drc drc(*world.ontology, world.enumerator.get());
    KndsOptions options;
    options.num_threads = threads;
    options.deadline = util::Deadline::Infinite();
    options.cancel_token = &token;
    options.fault_injector = &injector;
    Knds knds(*world.corpus, *world.index, &drc, options);
    const std::string context =
        "seed=" + std::to_string(seed) + " threads=" + std::to_string(threads);
    const auto rds = knds.SearchRds(world.query, kK);
    ASSERT_TRUE(rds.ok()) << context;
    EXPECT_FALSE(knds.last_stats().truncated) << context;
    ExpectBitIdentical(*rds, baseline_rds, context + " rds");
    const auto sds = knds.SearchSds(world.corpus->document(world.sds_query),
                                    kK);
    ASSERT_TRUE(sds.ok()) << context;
    EXPECT_FALSE(knds.last_stats().truncated) << context;
    ExpectBitIdentical(*sds, baseline_sds, context + " sds");
  }
}

// (b) Truncated runs are honest: the reported interval
// [distance, distance + error_bound] brackets the oracle's true
// distance, verified entries (error_bound 0) match it exactly, and a
// fixed cancellation op reproduces the run bit-for-bit.
TEST_P(RobustnessSeedTest, TruncatedErrorBoundsDominateTrueError) {
  const std::uint64_t seed = GetParam();
  const World world = MakeWorld(seed);
  constexpr std::uint32_t kK = 10;
  constexpr double kEps = 1e-9;
  ontology::DistanceOracle oracle(*world.ontology);

  const bool sds = seed % 2 == 1;  // Alternate search mode across seeds.
  const corpus::Document& query_doc = world.corpus->document(world.sds_query);

  std::uint64_t total_ops = 0;
  {
    util::FaultInjector injector({});
    Drc drc(*world.ontology, world.enumerator.get());
    KndsOptions options;
    options.fault_injector = &injector;
    Knds knds(*world.corpus, *world.index, &drc, options);
    ASSERT_TRUE((sds ? knds.SearchSds(query_doc, kK)
                     : knds.SearchRds(world.query, kK))
                    .ok());
    total_ops = injector.ops();
  }
  ASSERT_GT(total_ops, 0u);
  for (const std::uint64_t cancel_at :
       {std::uint64_t{1}, total_ops / 4, total_ops / 2}) {
    if (cancel_at == 0) continue;
    const std::string context = "seed=" + std::to_string(seed) +
                                " cancel_at=" + std::to_string(cancel_at);
    const auto run = [&]() {
      util::CancelToken token;
      util::FaultInjectorOptions fault_options;
      fault_options.cancel_at_op = cancel_at;
      util::FaultInjector injector(fault_options, &token);
      Drc drc(*world.ontology, world.enumerator.get());
      KndsOptions options;
      options.cancel_token = &token;
      options.fault_injector = &injector;
      Knds knds(*world.corpus, *world.index, &drc, options);
      auto results = sds ? knds.SearchSds(query_doc, kK)
                         : knds.SearchRds(world.query, kK);
      EXPECT_TRUE(results.ok()) << context;
      EXPECT_TRUE(knds.last_stats().truncated) << context;
      EXPECT_TRUE(knds.last_stats().cancelled) << context;
      return std::move(results).value();
    };
    const std::vector<ScoredDocument> first = run();
    // Determinism: the same cancellation point reproduces the result.
    ExpectBitIdentical(run(), first, context + " determinism");
    for (const ScoredDocument& scored : first) {
      const double truth =
          sds ? oracle.DocDocDistance(
                    query_doc.concepts(),
                    world.corpus->document(scored.id).concepts())
              : static_cast<double>(oracle.DocQueryDistance(
                    world.corpus->document(scored.id).concepts(),
                    world.query));
      EXPECT_GE(scored.error_bound, 0.0) << context;
      if (scored.error_bound == 0.0) {
        EXPECT_NEAR(scored.distance, truth, kEps)
            << context << " doc " << scored.id;
      } else {
        EXPECT_GE(truth, scored.distance - kEps)
            << context << " doc " << scored.id;
        EXPECT_LE(truth, scored.distance + scored.error_bound + kEps)
            << context << " doc " << scored.id;
      }
    }
  }
}

// Sharding is invisible to the fault machinery too: the injector's
// postings op fires once per concept visit (outside the per-shard
// loop), so a fixed cancel_at_op lands on the same operation — and
// yields the bit-identical truncated result — at any shard count. Both
// complete and truncated runs are compared against the single-index
// reference at 1, 4 and 8 shards over all 22 seeds.
TEST_P(RobustnessSeedTest, ShardedRunsAreBitIdenticalIncludingTruncation) {
  const std::uint64_t seed = GetParam();
  const World world = MakeWorld(seed);
  constexpr std::uint32_t kK = 10;

  // Single-index reference: one complete run (also counting injector
  // ops) and one run truncated halfway.
  std::vector<ScoredDocument> complete_want;
  std::uint64_t total_ops = 0;
  {
    util::FaultInjector injector({});
    Drc drc(*world.ontology, world.enumerator.get());
    KndsOptions options;
    options.fault_injector = &injector;
    Knds knds(*world.corpus, *world.index, &drc, options);
    auto results = knds.SearchRds(world.query, kK);
    ASSERT_TRUE(results.ok());
    complete_want = std::move(results).value();
    total_ops = injector.ops();
  }
  ASSERT_GT(total_ops, 1u);
  const std::uint64_t cancel_at = total_ops / 2;
  const auto truncated_run = [&](const corpus::Corpus& corpus,
                                 index::IndexView index) {
    util::CancelToken token;
    util::FaultInjectorOptions fault_options;
    fault_options.cancel_at_op = cancel_at;
    util::FaultInjector injector(fault_options, &token);
    Drc drc(*world.ontology, world.enumerator.get());
    KndsOptions options;
    options.cancel_token = &token;
    options.fault_injector = &injector;
    Knds knds(corpus, index, &drc, options);
    auto results = knds.SearchRds(world.query, kK);
    EXPECT_TRUE(results.ok());
    EXPECT_TRUE(knds.last_stats().truncated);
    return std::move(results).value();
  };
  const std::vector<ScoredDocument> truncated_want =
      truncated_run(*world.corpus, *world.index);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}}) {
    const std::string context = "seed=" + std::to_string(seed) +
                                " shards=" + std::to_string(shards);
    const corpus::Corpus resharded = corpus::Resharded(*world.corpus, shards);
    const index::ShardedIndex sharded(resharded);

    util::FaultInjector injector({});
    Drc drc(*world.ontology, world.enumerator.get());
    KndsOptions options;
    options.fault_injector = &injector;
    Knds knds(resharded, sharded, &drc, options);
    auto complete = knds.SearchRds(world.query, kK);
    ASSERT_TRUE(complete.ok()) << context;
    ExpectBitIdentical(*complete, complete_want, context + " complete");
    // Same operation count → a fixed cancel point means the same thing.
    EXPECT_EQ(injector.ops(), total_ops) << context;

    ExpectBitIdentical(truncated_run(resharded, sharded), truncated_want,
                       context + " truncated");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessSeedTest,
                         ::testing::Range(std::uint64_t{1100},
                                          std::uint64_t{1122}));

// (d) Admission control: a saturated engine sheds immediately with
// kResourceExhausted when the queue is full, and a queued query whose
// deadline lapses leaves with kDeadlineExceeded. The fault injector's
// postings hook parks the first query mid-search so saturation is
// deterministic on any machine.
TEST(AdmissionControlTest, ShedsAndTimesOutUnderSaturation) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 200;
  ontology_config.seed = 4242;
  auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool entered = false;
  bool release = false;
  util::FaultInjectorOptions fault_options;
  bool first_call = true;
  fault_options.postings_hook = [&]() {
    std::unique_lock<std::mutex> lock(gate_mutex);
    if (!first_call) return;
    first_call = false;
    entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  };
  util::FaultInjector injector(fault_options);

  RankingEngineOptions engine_options;
  engine_options.knds.num_threads = 1;
  engine_options.knds.fault_injector = &injector;
  engine_options.admission.max_in_flight = 1;
  engine_options.admission.max_queued = 1;
  auto engine =
      RankingEngine::Create(std::move(ontology).value(), engine_options);
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 40;
  corpus_config.avg_concepts_per_doc = 8;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = 4243;
  const auto seed_corpus =
      corpus::GenerateCorpus(engine->ontology(), corpus_config);
  ASSERT_TRUE(seed_corpus.ok());
  for (DocId d = 0; d < seed_corpus->num_documents(); ++d) {
    const auto concepts = seed_corpus->document(d).concepts();
    ASSERT_TRUE(engine->AddDocument({concepts.begin(), concepts.end()}).ok());
  }
  const std::vector<ConceptId> query =
      corpus::GenerateRdsQueries(*seed_corpus, 1, 3, 4244).front();

  // Query A enters and parks inside the postings hook, holding the one
  // execution slot.
  util::Status parked_status = util::Status::Ok();
  std::thread parked([&] {
    const auto results = engine->FindRelevant(query, 5);
    parked_status = results.status();
  });
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return entered; });
  }
  EXPECT_EQ(engine->admission_stats().in_flight, 1u);

  // Query B occupies the single queue slot and times out waiting.
  util::Status queued_status = util::Status::Ok();
  std::thread queued([&] {
    SearchControl control;
    control.deadline = util::Deadline::After(0.4);
    const auto results = engine->FindRelevant(query, 5, control);
    queued_status = results.status();
  });
  // Wait until B is visibly queued, so C's rejection below is
  // deterministic rather than racing B for the queue slot.
  while (engine->admission_stats().queued == 0) {
    std::this_thread::yield();
  }

  // Query C finds the queue full and is shed immediately.
  const auto shed = engine->FindRelevant(query, 5);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted);

  queued.join();
  EXPECT_EQ(queued_status.code(), util::StatusCode::kDeadlineExceeded);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  parked.join();
  EXPECT_TRUE(parked_status.ok()) << parked_status.ToString();

  const AdmissionStats stats = engine->admission_stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.abandoned, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

// A queued query whose cancel token fires abandons the wait with
// kCancelled, and a slot freed while another query is queued admits it.
TEST(AdmissionControlTest, QueuedQueryHonorsCancelAndAdmitsAfterRelease) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 150;
  ontology_config.seed = 4343;
  auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool entered = false;
  bool release = false;
  bool first_call = true;
  util::FaultInjectorOptions fault_options;
  fault_options.postings_hook = [&]() {
    std::unique_lock<std::mutex> lock(gate_mutex);
    if (!first_call) return;
    first_call = false;
    entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  };
  util::FaultInjector injector(fault_options);

  RankingEngineOptions engine_options;
  engine_options.knds.num_threads = 1;
  engine_options.knds.fault_injector = &injector;
  engine_options.admission.max_in_flight = 1;
  engine_options.admission.max_queued = 2;
  auto engine =
      RankingEngine::Create(std::move(ontology).value(), engine_options);
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 30;
  corpus_config.avg_concepts_per_doc = 8;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = 4344;
  const auto seed_corpus =
      corpus::GenerateCorpus(engine->ontology(), corpus_config);
  ASSERT_TRUE(seed_corpus.ok());
  for (DocId d = 0; d < seed_corpus->num_documents(); ++d) {
    const auto concepts = seed_corpus->document(d).concepts();
    ASSERT_TRUE(engine->AddDocument({concepts.begin(), concepts.end()}).ok());
  }
  const std::vector<ConceptId> query =
      corpus::GenerateRdsQueries(*seed_corpus, 1, 3, 4345).front();

  util::Status parked_status = util::Status::Ok();
  std::thread parked([&] {
    const auto results = engine->FindRelevant(query, 5);
    parked_status = results.status();
  });
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return entered; });
  }

  // Queued query 1: cancelled while waiting.
  util::CancelToken cancel;
  util::Status cancelled_status = util::Status::Ok();
  std::thread cancelled_thread([&] {
    SearchControl control;
    control.cancel_token = &cancel;
    const auto results = engine->FindRelevant(query, 5, control);
    cancelled_status = results.status();
  });
  // Queued query 2: survives until the slot frees, then completes.
  util::Status admitted_status = util::Status::Ok();
  std::thread admitted_thread([&] {
    const auto results = engine->FindRelevant(query, 5);
    admitted_status = results.status();
  });
  while (engine->admission_stats().queued < 2) {
    std::this_thread::yield();
  }

  cancel.Cancel();
  cancelled_thread.join();
  EXPECT_EQ(cancelled_status.code(), util::StatusCode::kCancelled);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  parked.join();
  admitted_thread.join();
  EXPECT_TRUE(parked_status.ok()) << parked_status.ToString();
  EXPECT_TRUE(admitted_status.ok()) << admitted_status.ToString();

  const AdmissionStats stats = engine->admission_stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.abandoned, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

// A default engine-level deadline budget applies to controls that carry
// none: an absurdly small default truncates the search (anytime result,
// not an error), and KndsStats reports it.
TEST(AdmissionControlTest, DefaultDeadlineBudgetTruncatesSearches) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 400;
  ontology_config.seed = 4444;
  auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  RankingEngineOptions engine_options;
  engine_options.knds.num_threads = 1;
  // Make traversal slow enough that a microscopic budget always lapses
  // mid-search, deterministically on any machine.
  engine_options.knds.simulated_postings_access_seconds = 1e-4;
  engine_options.admission.default_deadline_seconds = 1e-6;
  auto engine =
      RankingEngine::Create(std::move(ontology).value(), engine_options);
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 50;
  corpus_config.avg_concepts_per_doc = 10;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = 4445;
  const auto seed_corpus =
      corpus::GenerateCorpus(engine->ontology(), corpus_config);
  ASSERT_TRUE(seed_corpus.ok());
  for (DocId d = 0; d < seed_corpus->num_documents(); ++d) {
    const auto concepts = seed_corpus->document(d).concepts();
    ASSERT_TRUE(engine->AddDocument({concepts.begin(), concepts.end()}).ok());
  }
  const std::vector<ConceptId> query =
      corpus::GenerateRdsQueries(*seed_corpus, 1, 3, 4446).front();
  const auto results = engine->FindRelevant(query, 5);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(engine->last_search_stats().truncated);
}

}  // namespace
}  // namespace ecdr::core
