#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "ontology/generator.h"
#include "ontology/ontology_builder.h"
#include "ontology/ontology_io.h"
#include "util/binary_stream.h"

namespace ecdr {
namespace {

TEST(BinaryStreamTest, PrimitivesRoundTrip) {
  std::stringstream buffer;
  util::BinaryWriter writer(buffer);
  writer.WriteU32(0xDEADBEEFu);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteString("hello binary");
  writer.WriteString("");
  writer.WriteU32Vector({1, 2, 3});
  ASSERT_TRUE(writer.ok());

  util::BinaryReader reader(buffer);
  std::uint32_t u32 = 0;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  std::uint64_t u64 = 0;
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  std::string text;
  ASSERT_TRUE(reader.ReadString(&text).ok());
  EXPECT_EQ(text, "hello binary");
  ASSERT_TRUE(reader.ReadString(&text).ok());
  EXPECT_EQ(text, "");
  std::vector<std::uint32_t> values;
  ASSERT_TRUE(reader.ReadU32Vector(&values).ok());
  EXPECT_EQ(values, (std::vector<std::uint32_t>{1, 2, 3}));
  // Stream is exhausted now.
  EXPECT_FALSE(reader.ReadU32(&u32).ok());
}

TEST(BinaryStreamTest, LittleEndianLayout) {
  std::stringstream buffer;
  util::BinaryWriter writer(buffer);
  writer.WriteU32(0x01020304u);
  const std::string bytes = buffer.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(BinaryStreamTest, AllocationGuardRejectsCorruptLengths) {
  std::stringstream buffer;
  util::BinaryWriter writer(buffer);
  writer.WriteU32(0xFFFFFFFFu);  // Absurd length prefix.
  util::BinaryReader reader(buffer, /*max_allocation=*/1024);
  std::string text;
  EXPECT_FALSE(reader.ReadString(&text).ok());
}

TEST(BinaryOntologyIoTest, RoundTripWithSynonyms) {
  ontology::OntologyBuilder builder;
  const auto root = builder.AddConcept("root");
  const auto child = builder.AddConcept("child");
  ASSERT_TRUE(builder.AddEdge(root, child).ok());
  ASSERT_TRUE(builder.AddSynonym(child, "kid").ok());
  auto original = std::move(builder).Build();
  ASSERT_TRUE(original.ok());

  const std::string path = ::testing::TempDir() + "/ontology.bin";
  ASSERT_TRUE(ontology::SaveOntologyBinary(*original, path).ok());
  const auto loaded = ontology::LoadOntologyBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_concepts(), 2u);
  EXPECT_EQ(loaded->FindByName("kid"), child);
  std::remove(path.c_str());
}

TEST(BinaryOntologyIoTest, RoundTripLargeGeneratedOntology) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 5'000;
  config.seed = 77;
  const auto original = ontology::GenerateOntology(config);
  ASSERT_TRUE(original.ok());
  const std::string path = ::testing::TempDir() + "/ontology_large.bin";
  ASSERT_TRUE(ontology::SaveOntologyBinary(*original, path).ok());
  const auto loaded = ontology::LoadOntologyBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_concepts(), original->num_concepts());
  EXPECT_EQ(loaded->num_edges(), original->num_edges());
  for (ontology::ConceptId c = 0; c < original->num_concepts(); c += 97) {
    EXPECT_EQ(loaded->depth(c), original->depth(c));
    EXPECT_EQ(loaded->path_count(c), original->path_count(c));
  }
  std::remove(path.c_str());
}

TEST(BinaryOntologyIoTest, RejectsCorruptInput) {
  EXPECT_FALSE(ontology::LoadOntologyBinary("/nonexistent.bin").ok());
  const std::string path = ::testing::TempDir() + "/ontology_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage garbage garbage";
  }
  EXPECT_FALSE(ontology::LoadOntologyBinary(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryOntologyIoTest, RejectsTruncatedFile) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 100;
  const auto original = ontology::GenerateOntology(config);
  ASSERT_TRUE(original.ok());
  const std::string path = ::testing::TempDir() + "/ontology_trunc.bin";
  ASSERT_TRUE(ontology::SaveOntologyBinary(*original, path).ok());
  // Truncate to half.
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    content = ss.str();
  }
  {
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(), static_cast<long>(content.size() / 2));
  }
  EXPECT_FALSE(ontology::LoadOntologyBinary(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryCorpusIoTest, RoundTrip) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 500;
  ontology_config.seed = 78;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 40;
  corpus_config.avg_concepts_per_doc = 15;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = 79;
  const auto original = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(original.ok());

  const std::string path = ::testing::TempDir() + "/corpus.bin";
  ASSERT_TRUE(corpus::SaveCorpusBinary(*original, path).ok());
  const auto loaded = corpus::LoadCorpusBinary(*ontology, path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_documents(), original->num_documents());
  for (corpus::DocId d = 0; d < original->num_documents(); ++d) {
    EXPECT_EQ(loaded->document(d), original->document(d));
  }
  std::remove(path.c_str());
}

TEST(BinaryCorpusIoTest, ValidatesAgainstOntology) {
  ontology::OntologyBuilder small_builder;
  const auto root = small_builder.AddConcept("root");
  (void)root;
  auto small = std::move(small_builder).Build();
  ASSERT_TRUE(small.ok());

  ontology::OntologyGeneratorConfig big_config;
  big_config.num_concepts = 100;
  const auto big = ontology::GenerateOntology(big_config);
  ASSERT_TRUE(big.ok());
  corpus::Corpus corpus(*big);
  ASSERT_TRUE(corpus.AddDocument(corpus::Document({50, 60})).ok());
  const std::string path = ::testing::TempDir() + "/corpus_mismatch.bin";
  ASSERT_TRUE(corpus::SaveCorpusBinary(corpus, path).ok());
  // Loading against the 1-concept ontology must fail validation.
  EXPECT_FALSE(corpus::LoadCorpusBinary(*small, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ecdr
