#include "ontology/dewey.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "tests/fig3_fixture.h"

namespace ecdr::ontology {
namespace {

using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

std::vector<std::string> Formatted(const std::vector<DeweyAddress>& list) {
  std::vector<std::string> out;
  out.reserve(list.size());
  for (const auto& address : list) out.push_back(FormatDewey(address));
  return out;
}

TEST(DeweyTest, FormatAndParseRoundTrip) {
  const DeweyAddress address = {1, 12, 3};
  EXPECT_EQ(FormatDewey(address), "1.12.3");
  const auto parsed = ParseDewey("1.12.3");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, address);
}

TEST(DeweyTest, RootAddress) {
  EXPECT_EQ(FormatDewey(DeweyAddress{}), "<root>");
  const auto parsed = ParseDewey("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(DeweyTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseDewey("1..2").ok());
  EXPECT_FALSE(ParseDewey("1.0.2").ok());  // Components are 1-based.
  EXPECT_FALSE(ParseDewey("1.x").ok());
  EXPECT_FALSE(ParseDewey("-1").ok());
  EXPECT_FALSE(ParseDewey("1.").ok());
}

TEST(DeweyTest, LexicographicOrder) {
  const DeweyAddress a = {1, 1, 1};
  const DeweyAddress b = {1, 1, 1, 2};
  const DeweyAddress c = {1, 2};
  EXPECT_TRUE(DeweyLess(a, b));  // Prefix sorts first.
  EXPECT_TRUE(DeweyLess(b, c));
  EXPECT_TRUE(DeweyLess(a, c));
  EXPECT_FALSE(DeweyLess(a, a));
}

TEST(DeweyTest, CommonPrefix) {
  const DeweyAddress a = {1, 1, 1, 2, 1, 1};
  const DeweyAddress b = {1, 1, 1, 1};
  EXPECT_EQ(DeweyCommonPrefix(a, b), 3u);
  EXPECT_EQ(DeweyCommonPrefix(a, a), a.size());
  EXPECT_EQ(DeweyCommonPrefix(a, DeweyAddress{}), 0u);
}

// Table 1 of the paper: the Dewey address lists for d = {F, R, T, V} and
// q = {I, L, U} on the Figure 3 ontology.
TEST(AddressEnumeratorTest, PaperTable1Addresses) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);

  EXPECT_EQ(Formatted(enumerator.Addresses(fig3['I'])),
            (std::vector<std::string>{"1.1.1.1"}));
  EXPECT_EQ(Formatted(enumerator.Addresses(fig3['R'])),
            (std::vector<std::string>{"1.1.1.2.1.1", "3.1.1.1.1"}));
  EXPECT_EQ(Formatted(enumerator.Addresses(fig3['U'])),
            (std::vector<std::string>{"1.1.1.2.1.1.1", "3.1.1.1.1.1"}));
  EXPECT_EQ(Formatted(enumerator.Addresses(fig3['V'])),
            (std::vector<std::string>{"1.1.1.2.2.1.1", "3.1.1.2.1.1"}));
  EXPECT_EQ(Formatted(enumerator.Addresses(fig3['F'])),
            (std::vector<std::string>{"3.1"}));
  EXPECT_EQ(Formatted(enumerator.Addresses(fig3['T'])),
            (std::vector<std::string>{"3.1.2.1.1.1"}));
  EXPECT_EQ(Formatted(enumerator.Addresses(fig3['L'])),
            (std::vector<std::string>{"3.1.2.2"}));
  EXPECT_EQ(Formatted(enumerator.Addresses(fig3['A'])),
            (std::vector<std::string>{"<root>"}));
}

TEST(AddressEnumeratorTest, AddressCountMatchesPathCount) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    EXPECT_EQ(enumerator.Addresses(c).size(), fig3.ontology.path_count(c))
        << fig3.ontology.name(c);
    EXPECT_FALSE(enumerator.truncated(c));
  }
}

TEST(DeweyResolverTest, ResolvesEveryEnumeratedAddress) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  const DeweyResolver resolver(fig3.ontology);
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    for (const DeweyAddress& address : enumerator.Addresses(c)) {
      EXPECT_EQ(resolver.Resolve(address), c) << FormatDewey(address);
    }
  }
}

TEST(DeweyResolverTest, RejectsOutOfRangeComponents) {
  const Fig3 fig3 = MakeFig3Ontology();
  const DeweyResolver resolver(fig3.ontology);
  EXPECT_EQ(resolver.Resolve(DeweyAddress{4}), kInvalidConcept);  // A has 3.
  EXPECT_EQ(resolver.Resolve(DeweyAddress{1, 1, 1, 1, 3}), kInvalidConcept);
  EXPECT_EQ(resolver.Resolve(DeweyAddress{0}), kInvalidConcept);
}

TEST(AddressEnumeratorTest, CapKeepsShortestAddressesAndMarksTruncation) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumeratorOptions options;
  options.max_addresses = 1;
  AddressEnumerator enumerator(fig3.ontology, options);
  // R has two addresses; the cap keeps the shorter one (3.1.1.1.1).
  const auto& addresses = enumerator.Addresses(fig3['R']);
  ASSERT_EQ(addresses.size(), 1u);
  EXPECT_EQ(FormatDewey(addresses[0]), "3.1.1.1.1");
  EXPECT_TRUE(enumerator.truncated(fig3['R']));
}

TEST(AddressEnumeratorTest, AddressesAreSortedLexicographically) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    const auto& addresses = enumerator.Addresses(c);
    EXPECT_TRUE(std::is_sorted(addresses.begin(), addresses.end(),
                               [](const DeweyAddress& a,
                                  const DeweyAddress& b) {
                                 return DeweyLess(a, b);
                               }));
  }
}

TEST(AddressEnumeratorTest, CacheClearsAndRecounts) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  enumerator.Addresses(fig3['V']);
  EXPECT_GT(enumerator.cached_addresses(), 0u);
  enumerator.ClearCache();
  EXPECT_EQ(enumerator.cached_addresses(), 0u);
  EXPECT_EQ(enumerator.Addresses(fig3['V']).size(), 2u);
}

TEST(AddressEnumeratorTest, ReaderLeaseCountsAndReleases) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  EXPECT_EQ(enumerator.live_readers(), 0);
  {
    AddressEnumerator::ReaderLease lease(&enumerator);
    EXPECT_EQ(enumerator.live_readers(), 1);
    AddressEnumerator::ReaderLease moved(std::move(lease));
    EXPECT_EQ(enumerator.live_readers(), 1);  // Move transfers, not adds.
    AddressEnumerator::ReaderLease second(&enumerator);
    EXPECT_EQ(enumerator.live_readers(), 2);
  }
  EXPECT_EQ(enumerator.live_readers(), 0);
  enumerator.ClearCache();  // Legal again once every lease is gone.
}

// Regression: clearing a frozen enumerator under a live reader (here a
// Drc engine holding its lease) used to silently dangle the reader's
// address references; it must now abort via the always-on check even in
// NDEBUG builds.
TEST(AddressEnumeratorDeathTest, ClearCacheWithLiveReaderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  enumerator.PrecomputeAll();
  ASSERT_TRUE(enumerator.frozen());
  AddressEnumerator::ReaderLease lease(&enumerator);
  EXPECT_DEATH(enumerator.ClearCache(), "ECDR_CHECK failed");
}

}  // namespace
}  // namespace ecdr::ontology
