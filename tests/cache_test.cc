// The cross-query cache layer (see DESIGN.md, "Cache hierarchy"):
// util::ShardedLruCache mechanics, the ontology-level concept-pair
// cache, the per-engine Ddq memo with its version/epoch invalidation,
// and the RankingEngine integration — warm searches must be
// bit-identical to cold ones, AddDocument must bump the epoch without
// flushing concept-pair distances, and one shared cache must survive
// being hammered from many query threads racing a writer (the latter
// also runs under the tsan preset via the `cache` label).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "core/distance_cache.h"
#include "core/drc.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "core/ranking_engine.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "index/inverted_index.h"
#include "ontology/concept_pair_cache.h"
#include "ontology/distance_oracle.h"
#include "ontology/generator.h"
#include "util/lru_cache.h"

namespace ecdr::core {
namespace {

using util::ShardedLruCache;
using util::ShardedLruCacheOptions;

ontology::Ontology MakeOntology(std::uint64_t seed, std::uint32_t concepts) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = concepts;
  config.seed = seed;
  auto ontology = ontology::GenerateOntology(config);
  EXPECT_TRUE(ontology.ok());
  return std::move(ontology).value();
}

corpus::Corpus MakeCorpus(const ontology::Ontology& ontology,
                          std::uint64_t seed, std::uint32_t docs) {
  corpus::CorpusGeneratorConfig config;
  config.num_documents = docs;
  config.avg_concepts_per_doc = 15;
  config.seed = seed;
  auto corpus = corpus::GenerateCorpus(ontology, config);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

void ExpectSameResults(const std::vector<ScoredDocument>& a,
                       const std::vector<ScoredDocument>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "rank " << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << "rank " << i;
  }
}

// ---------------------------------------------------------------------------
// ShardedLruCache

// num_shards = 1 makes the global eviction order observable: with every
// entry in one shard, eviction is exact LRU.
TEST(LruCacheTest, EvictsLeastRecentlyUsedInOrder) {
  ShardedLruCache<int, int> cache(ShardedLruCacheOptions{3, 1});
  ASSERT_EQ(cache.num_shards(), 1u);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  int value = 0;
  ASSERT_TRUE(cache.Get(1, &value));  // Refresh 1: LRU order is now 2,3,1.
  cache.Put(4, 40);                   // Evicts 2.
  EXPECT_FALSE(cache.Get(2, &value));
  EXPECT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, 10);
  EXPECT_TRUE(cache.Get(3, &value));
  EXPECT_TRUE(cache.Get(4, &value));
  EXPECT_EQ(cache.counters().evictions, 1u);

  cache.Put(5, 50);  // LRU order after the Gets was 1,3,4: evicts 1.
  EXPECT_FALSE(cache.Get(1, &value));
  EXPECT_TRUE(cache.Get(3, &value));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, OverwriteRefreshesRecencyAndValue) {
  ShardedLruCache<int, int> cache(ShardedLruCacheOptions{2, 1});
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // Overwrite refreshes 1; 2 becomes LRU.
  cache.Put(3, 30);  // Evicts 2.
  int value = 0;
  EXPECT_FALSE(cache.Get(2, &value));
  ASSERT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, 11);
}

TEST(LruCacheTest, CapacityZeroBypasses) {
  ShardedLruCache<int, int> cache(ShardedLruCacheOptions{0, 8});
  cache.Put(1, 10);
  int value = 0;
  EXPECT_FALSE(cache.Get(1, &value));
  EXPECT_EQ(cache.size(), 0u);
  const util::CacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits, 0u);
  EXPECT_EQ(counters.entries, 0u);
}

TEST(LruCacheTest, CountersTrackHitsMissesEntries) {
  ShardedLruCache<int, int> cache(ShardedLruCacheOptions{8, 2});
  int value = 0;
  EXPECT_FALSE(cache.Get(7, &value));
  cache.Put(7, 70);
  EXPECT_TRUE(cache.Get(7, &value));
  EXPECT_TRUE(cache.Get(7, &value));
  const util::CacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits, 2u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 1u);
  EXPECT_EQ(counters.lookups(), 3u);
  EXPECT_DOUBLE_EQ(counters.hit_rate(), 2.0 / 3.0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.counters().hits, 2u);  // Clear keeps counters.
}

// ---------------------------------------------------------------------------
// ConceptPairCache

TEST(ConceptPairCacheTest, OrderInsensitiveKeys) {
  ontology::ConceptPairCache cache;
  std::uint32_t distance = 0;
  EXPECT_FALSE(cache.Get(3, 9, &distance));
  cache.Put(9, 3, 4);
  ASSERT_TRUE(cache.Get(3, 9, &distance));
  EXPECT_EQ(distance, 4u);
  ASSERT_TRUE(cache.Get(9, 3, &distance));
  EXPECT_EQ(distance, 4u);
  EXPECT_EQ(cache.size(), 1u);
}

// Two oracles sharing one pair cache: the second oracle's lookups hit,
// and cached distances match uncached computation exactly.
TEST(ConceptPairCacheTest, SharedAcrossDistanceOracles) {
  const auto ontology = MakeOntology(11, 400);
  ontology::ConceptPairCache cache;
  ontology::DistanceOracle uncached(ontology);
  ontology::DistanceOracle first(ontology, &cache);
  ontology::DistanceOracle second(ontology, &cache);

  const std::vector<std::pair<ontology::ConceptId, ontology::ConceptId>>
      pairs = {{1, 2}, {5, 17}, {200, 3}, {42, 42}, {399, 7}};
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(first.ConceptDistance(a, b), uncached.ConceptDistance(a, b));
  }
  const std::uint64_t misses_after_warm = cache.counters().misses;
  EXPECT_GT(misses_after_warm, 0u);
  for (const auto& [a, b] : pairs) {
    // Order-swapped lookups from another oracle must all hit.
    EXPECT_EQ(second.ConceptDistance(b, a), uncached.ConceptDistance(a, b));
  }
  EXPECT_EQ(cache.counters().misses, misses_after_warm);
  EXPECT_EQ(cache.counters().hits, pairs.size());
}

// ---------------------------------------------------------------------------
// DdqMemo

TEST(DdqMemoTest, SignaturesCanonicalizeConceptSets) {
  const std::vector<ontology::ConceptId> sorted = {3, 7, 19};
  const QuerySig rds = SignatureOfConcepts(sorted, /*sds=*/false);
  const QuerySig sds = SignatureOfConcepts(sorted, /*sds=*/true);
  ASSERT_TRUE(rds.valid);
  ASSERT_TRUE(sds.valid);
  // Same concepts, different domains: RDS Ddq and SDS Ddd must not
  // share entries.
  EXPECT_FALSE(rds.lo == sds.lo && rds.hi == sds.hi);

  const std::vector<WeightedConcept> weighted = {{3, 1.0}, {7, 2.0}};
  const QuerySig wsig = SignatureOfWeighted(weighted);
  ASSERT_TRUE(wsig.valid);
  EXPECT_FALSE(wsig.lo == rds.lo && wsig.hi == rds.hi);
  const std::vector<WeightedConcept> reweighted = {{3, 1.0}, {7, 2.5}};
  const QuerySig wsig2 = SignatureOfWeighted(reweighted);
  EXPECT_FALSE(wsig.lo == wsig2.lo && wsig.hi == wsig2.hi);
}

TEST(DdqMemoTest, StoresAndInvalidatesPerDocument) {
  DdqMemo memo;
  const QuerySig sig =
      SignatureOfConcepts(std::vector<ontology::ConceptId>{1, 2}, false);
  memo.Put(sig, 10, 3.5);
  memo.Put(sig, 11, 4.5);
  double value = 0.0;
  ASSERT_TRUE(memo.Get(sig, 10, &value));
  EXPECT_EQ(value, 3.5);

  const std::uint64_t epoch_before = memo.epoch();
  memo.InvalidateDocument(10);
  EXPECT_EQ(memo.epoch(), epoch_before + 1);
  EXPECT_FALSE(memo.Get(sig, 10, &value));  // Version-keyed: stale entry.
  ASSERT_TRUE(memo.Get(sig, 11, &value));   // Other documents unaffected.
  EXPECT_EQ(value, 4.5);

  // Fresh value under the new version round-trips.
  memo.Put(sig, 10, 9.25);
  ASSERT_TRUE(memo.Get(sig, 10, &value));
  EXPECT_EQ(value, 9.25);
}

TEST(DdqMemoTest, InvalidSignatureAndDisabledMemoBypass) {
  DdqMemo memo;
  double value = 0.0;
  memo.Put(QuerySig{}, 1, 2.0);  // Invalid signature: dropped.
  EXPECT_FALSE(memo.Get(QuerySig{}, 1, &value));
  EXPECT_EQ(memo.size(), 0u);

  CacheOptions disabled;
  disabled.enable_ddq_memo = false;
  DdqMemo off(disabled);
  EXPECT_FALSE(off.enabled());
  const QuerySig sig =
      SignatureOfConcepts(std::vector<ontology::ConceptId>{1}, false);
  off.Put(sig, 1, 2.0);
  EXPECT_FALSE(off.Get(sig, 1, &value));
  EXPECT_EQ(off.size(), 0u);
}

// ---------------------------------------------------------------------------
// Engine integration

// Warm repeats of the same queries must reproduce the cold results
// bit-for-bit while actually hitting the memo, across all three rankers
// sharing one engine-owned memo.
TEST(CacheTest, WarmSearchesMatchColdBitForBit) {
  auto ontology = MakeOntology(21, 1'200);
  const auto docs = MakeCorpus(ontology, 22, 120);
  const auto queries = corpus::GenerateRdsQueries(docs, 8, 4, 23);

  RankingEngineOptions options;
  options.knds.num_threads = 1;
  auto engine = RankingEngine::Create(std::move(ontology), options);
  for (corpus::DocId d = 0; d < docs.num_documents(); ++d) {
    const auto& concepts = docs.document(d).concepts();
    ASSERT_TRUE(engine
                    ->AddDocument(std::vector<ontology::ConceptId>(
                        concepts.begin(), concepts.end()))
                    .ok());
  }

  std::vector<std::vector<ScoredDocument>> cold;
  for (const auto& query : queries) {
    const auto results = engine->FindRelevant(query, 10);
    ASSERT_TRUE(results.ok());
    cold.push_back(*results);
  }
  const auto cold_sds = engine->FindSimilar(0, 10);
  ASSERT_TRUE(cold_sds.ok());

  const util::CacheCounters after_cold = engine->ddq_memo_counters();
  EXPECT_GT(after_cold.misses, 0u);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto warm = engine->FindRelevant(queries[q], 10);
    ASSERT_TRUE(warm.ok());
    ExpectSameResults(cold[q], *warm);
    EXPECT_GT(engine->last_search_stats().ddq_memo_hits, 0u);
  }
  const auto warm_sds = engine->FindSimilar(0, 10);
  ASSERT_TRUE(warm_sds.ok());
  ExpectSameResults(*cold_sds, *warm_sds);

  const util::CacheCounters after_warm = engine->ddq_memo_counters();
  EXPECT_GT(after_warm.hits, after_cold.hits);
}

// A disabled cache must not change any ranking: same engine state, same
// queries, capacity-0 memo and pair cache.
TEST(CacheTest, DisabledCacheIsPureBypass) {
  auto make_engine = [](bool enable) {
    auto ontology = MakeOntology(31, 1'000);
    RankingEngineOptions options;
    options.knds.num_threads = 1;
    options.knds.cache.enable_ddq_memo = enable;
    options.knds.cache.enable_concept_pair_cache = enable;
    return RankingEngine::Create(std::move(ontology), options);
  };
  auto cached = make_engine(true);
  auto uncached = make_engine(false);
  const auto docs = MakeCorpus(cached->ontology(), 32, 100);
  for (corpus::DocId d = 0; d < docs.num_documents(); ++d) {
    const auto& concepts = docs.document(d).concepts();
    std::vector<ontology::ConceptId> ids(concepts.begin(), concepts.end());
    ASSERT_TRUE(cached->AddDocument(ids).ok());
    ASSERT_TRUE(uncached->AddDocument(std::move(ids)).ok());
  }
  const auto queries = corpus::GenerateRdsQueries(docs, 6, 3, 33);
  for (int round = 0; round < 2; ++round) {  // Cold then warm.
    for (const auto& query : queries) {
      const auto with = cached->FindRelevant(query, 8);
      const auto without = uncached->FindRelevant(query, 8);
      ASSERT_TRUE(with.ok());
      ASSERT_TRUE(without.ok());
      ExpectSameResults(*without, *with);
    }
  }
  EXPECT_EQ(uncached->ddq_memo_counters().lookups(), 0u);
  EXPECT_GT(cached->ddq_memo_counters().hits, 0u);
}

// AddDocument must advance the epoch and leave the engine answering
// with fresh Ddq values: a duplicate of the current best document must
// appear in the warm top-k at exactly the same distance, and the
// concept-pair cache must not be flushed by the insert.
TEST(CacheTest, AddDocumentBumpsEpochAndReturnsFreshDdq) {
  auto ontology = MakeOntology(41, 1'000);
  const auto docs = MakeCorpus(ontology, 42, 100);
  const auto queries = corpus::GenerateRdsQueries(docs, 4, 4, 43);

  RankingEngineOptions options;
  options.knds.num_threads = 1;
  auto engine = RankingEngine::Create(std::move(ontology), options);
  // Warm the concept-pair cache through the engine's shared instance.
  ontology::DistanceOracle oracle(engine->ontology(),
                                  engine->concept_pair_cache());
  (void)oracle.ConceptDistance(1, 2);
  const std::uint64_t pair_entries = engine->concept_pair_counters().entries;
  EXPECT_GT(pair_entries, 0u);

  std::uint64_t expected_epoch = 0;
  EXPECT_EQ(engine->cache_epoch(), expected_epoch);
  for (corpus::DocId d = 0; d < docs.num_documents(); ++d) {
    const auto& concepts = docs.document(d).concepts();
    ASSERT_TRUE(engine
                    ->AddDocument(std::vector<ontology::ConceptId>(
                        concepts.begin(), concepts.end()))
                    .ok());
    ++expected_epoch;
    ASSERT_EQ(engine->cache_epoch(), expected_epoch);
  }

  for (const auto& query : queries) {
    // Warm the memo on this query.
    const auto cold = engine->FindRelevant(query, 5);
    ASSERT_TRUE(cold.ok());
    ASSERT_EQ(cold->size(), 5u);

    // Insert the query itself as a document: its Ddq is exactly 0, so
    // the warm re-search must surface the new id — proving the engine
    // computes a fresh Ddq for it rather than serving only stale memo
    // state.
    const auto inserted = engine->AddDocument(
        std::vector<ontology::ConceptId>(query.begin(), query.end()));
    ASSERT_TRUE(inserted.ok());
    ++expected_epoch;
    EXPECT_EQ(engine->cache_epoch(), expected_epoch);

    std::size_t cold_zeros = 0;
    for (const ScoredDocument& scored : *cold) {
      if (scored.distance == 0.0) ++cold_zeros;
    }
    const auto warm = engine->FindRelevant(query, 5);
    ASSERT_TRUE(warm.ok());
    bool inserted_found = false;
    for (const ScoredDocument& scored : *warm) {
      if (scored.id == *inserted) {
        inserted_found = true;
        EXPECT_EQ(scored.distance, 0.0);
      }
    }
    // Only ties at distance 0 with smaller ids could displace it.
    if (cold_zeros < 5) {
      EXPECT_TRUE(inserted_found);
    }
  }

  // Document inserts never touch concept-pair distances.
  EXPECT_GE(engine->concept_pair_counters().entries, pair_entries);
}

// Standalone rankers sharing one memo agree with their memo-less
// counterparts: entries written by ExhaustiveRanker are consumed by
// Knds and vice versa (both store exact DRC doubles).
TEST(CacheTest, MemoSharedAcrossRankersIsExact) {
  const auto ontology = MakeOntology(51, 1'000);
  const auto corpus = MakeCorpus(ontology, 52, 90);
  const index::InvertedIndex index(corpus);
  const auto queries = corpus::GenerateRdsQueries(corpus, 5, 3, 53);

  ontology::AddressEnumerator enumerator(ontology);
  enumerator.PrecomputeAll();
  DdqMemo memo;

  for (const auto& query : queries) {
    Drc plain_drc(ontology, &enumerator);
    ExhaustiveRanker plain(corpus, &plain_drc);
    const auto want = plain.TopKRelevant(query, 10);
    ASSERT_TRUE(want.ok());

    // Exhaustive fills the memo for every document...
    Drc fill_drc(ontology, &enumerator);
    ExhaustiveRankerOptions fill_options;
    fill_options.ddq_memo = &memo;
    ExhaustiveRanker fill(corpus, &fill_drc, fill_options);
    const auto filled = fill.TopKRelevant(query, 10);
    ASSERT_TRUE(filled.ok());
    ExpectSameResults(*want, *filled);

    // ...and a memo-backed Knds over the same query consumes them while
    // returning the identical top-k. The covered-distance shortcut is
    // disabled so every exact distance goes through the memo.
    Drc knds_drc(ontology, &enumerator);
    KndsOptions knds_options;
    knds_options.covered_distance_shortcut = false;
    Knds knds(corpus, index, &knds_drc, knds_options, nullptr, &memo);
    const auto got = knds.SearchRds(query, 10);
    ASSERT_TRUE(got.ok());
    ExpectSameResults(*want, *got);
    EXPECT_GT(knds.last_stats().ddq_memo_hits, 0u);
    EXPECT_EQ(knds.last_stats().ddq_memo_misses, 0u);
    EXPECT_EQ(knds_drc.stats().calls, 0u);  // All distances memo-served.
  }
}

// ---------------------------------------------------------------------------
// Races (runs under the tsan preset via the `cache` label)

// One shared DdqMemo hammered from 8 reader/writer query threads racing
// an invalidator. Values are self-checking: entry(doc) == doc * 0.5, so
// any hit must return exactly that.
TEST(CacheTest, SharedMemoSurvivesEightThreadsRacingInvalidation) {
  CacheOptions options;
  options.ddq_capacity = 256;  // Small: forces concurrent eviction too.
  DdqMemo memo(options);
  const QuerySig sig =
      SignatureOfConcepts(std::vector<ontology::ConceptId>{2, 3, 5}, false);

  constexpr int kThreads = 8;
  constexpr int kIterations = 4'000;
  constexpr corpus::DocId kDocs = 512;
  std::atomic<int> corrupt{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kIterations; ++i) {
        const corpus::DocId doc =
            static_cast<corpus::DocId>((i * 31 + t * 7) % kDocs);
        double value = 0.0;
        if (memo.Get(sig, doc, &value)) {
          if (value != doc * 0.5) ++corrupt;
        } else {
          memo.Put(sig, doc, doc * 0.5);
        }
      }
    });
  }
  std::thread invalidator([&]() {
    for (corpus::DocId doc = 0; doc < kDocs; ++doc) {
      memo.InvalidateDocument(doc % 16);
      std::this_thread::yield();
    }
  });
  for (auto& thread : threads) thread.join();
  invalidator.join();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_GT(memo.counters().lookups(), 0u);
}

// Full-stack version: 8 query threads against one engine (one shared
// memo + pair cache) racing an AddDocument writer; every search must
// succeed and the epoch must count the writer's inserts.
TEST(CacheTest, EngineCachesSurviveSearchesRacingWriter) {
  auto ontology = MakeOntology(61, 1'200);
  const auto seed_docs = MakeCorpus(ontology, 62, 80);
  const auto extra_docs = MakeCorpus(ontology, 63, 40);
  const auto queries = corpus::GenerateRdsQueries(seed_docs, 8, 3, 64);

  RankingEngineOptions options;
  options.knds.num_threads = 2;  // Waves also share the memo.
  options.knds.cache.ddq_capacity = 1 << 10;
  // Force every exact distance through DRC so the warm re-query below
  // must observe memo hits (the covered-distance shortcut would bypass
  // the memo for fully-covered documents).
  options.knds.covered_distance_shortcut = false;
  auto engine = RankingEngine::Create(std::move(ontology), options);
  for (corpus::DocId d = 0; d < seed_docs.num_documents(); ++d) {
    const auto& concepts = seed_docs.document(d).concepts();
    ASSERT_TRUE(engine
                    ->AddDocument(std::vector<ontology::ConceptId>(
                        concepts.begin(), concepts.end()))
                    .ok());
  }
  const std::uint64_t epoch_before = engine->cache_epoch();

  constexpr int kReaders = 8;
  constexpr int kIterationsPerReader = 12;
  std::atomic<int> failures{0};
  std::thread writer([&]() {
    for (corpus::DocId d = 0; d < extra_docs.num_documents(); ++d) {
      const auto& concepts = extra_docs.document(d).concepts();
      if (!engine
               ->AddDocument(std::vector<ontology::ConceptId>(
                   concepts.begin(), concepts.end()))
               .ok()) {
        ++failures;
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      std::size_t q = static_cast<std::size_t>(t);
      for (int iter = 0; iter < kIterationsPerReader; ++iter) {
        const auto relevant =
            engine->FindRelevant(queries[q % queries.size()], 5);
        if (!relevant.ok() || relevant->empty()) ++failures;
        const auto similar =
            engine->FindSimilar(static_cast<corpus::DocId>(q % 20), 5);
        if (!similar.ok()) ++failures;
        ++q;
      }
    });
  }
  for (auto& reader : readers) reader.join();
  writer.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine->cache_epoch(),
            epoch_before + extra_docs.num_documents());

  // Quiesced engine: repeating a query now is warm and still correct.
  const auto once = engine->FindRelevant(queries[0], 5);
  const auto again = engine->FindRelevant(queries[0], 5);
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(again.ok());
  ExpectSameResults(*once, *again);
  EXPECT_GT(engine->last_search_stats().ddq_memo_hits, 0u);
}

}  // namespace
}  // namespace ecdr::core
