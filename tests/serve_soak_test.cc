// Concurrency soak of the serving path: N client threads hammer
// /v1/search with a mix of valid queries, nanosecond deadlines and
// malformed bodies while a writer publishes new snapshot generations
// through the engine's SnapshotBuilder and a poller scrapes /status.
// Every response must be complete (its body matches its own
// Content-Length — no torn writes), every status must be one of the
// contract's codes, and the snapshot generation reported by /status
// must be monotone non-decreasing across the churn. Runs under the
// tsan preset (labels: serve, concurrency).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/ranking_engine.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "ontology/generator.h"
#include "serve/json.h"
#include "serve/server.h"
#include "tests/serve_test_util.h"

namespace ecdr::serve {
namespace {

constexpr int kClientThreads = 4;
constexpr int kRequestsPerClient = 30;
constexpr int kWriterDocs = 60;
constexpr int kStatusPolls = 40;

TEST(ServeSoakTest, ConcurrentClientsWriterAndPoller) {
  ontology::OntologyGeneratorConfig onto_config;
  onto_config.num_concepts = 800;
  onto_config.seed = 7;
  auto ontology = ontology::GenerateOntology(onto_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 80;
  corpus_config.avg_concepts_per_doc = 12;
  corpus_config.seed = 71;
  auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());

  core::RankingEngineOptions engine_options;
  // Engine admission on, deliberately tight, so kResourceExhausted
  // (-> 429) and engine-side deadline expiry both get exercised.
  engine_options.admission.max_in_flight = 2;
  engine_options.admission.max_queued = 2;
  auto engine =
      core::RankingEngine::Create(std::move(*ontology), engine_options);
  ASSERT_TRUE(engine->AddCorpus(*corpus).ok());

  ServerOptions server_options;
  server_options.num_workers = 3;
  server_options.max_queue = 8;  // small: queue-full sheds are expected
  Server server(engine.get(), server_options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  const auto queries = corpus::GenerateRdsQueries(*corpus, 8, 4, 2024);

  std::atomic<int> torn_responses{0};
  std::atomic<int> bad_statuses{0};
  std::atomic<int> ok_responses{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        std::string body;
        const int flavor = (t + i) % 5;
        if (flavor == 4) {
          body = "{\"concepts\":[1,";  // malformed JSON -> clean 400
        } else {
          const auto& query = queries[(t * 7 + i) % queries.size()];
          body = "{\"concepts\":[";
          for (std::size_t c = 0; c < query.size(); ++c) {
            if (c > 0) body += ',';
            body += std::to_string(query[c]);
          }
          body += "],\"k\":5";
          // Fault injection: a nanosecond budget must come back as a
          // clean 504, never a hang or a torn response.
          if (flavor == 3) body += ",\"deadline_ms\":0.000001";
          body += '}';
        }
        const auto response =
            serve_test::PostJson(port, "/v1/search", body);
        if (!response.transport_ok || !response.complete) {
          torn_responses.fetch_add(1);
          continue;
        }
        switch (response.status) {
          case 200:
            ok_responses.fetch_add(1);
            break;
          case 400:
          case 429:
          case 504:
            break;  // all part of the overload contract
          default:
            bad_statuses.fetch_add(1);
            break;
        }
      }
    });
  }

  // Writer: publishes generations through the SnapshotBuilder while
  // the clients are searching. Builder backpressure (the bounded
  // pending queue) may reject under churn; that is fine, searches must
  // not be disturbed either way.
  std::thread writer([&] {
    for (int i = 0; i < kWriterDocs; ++i) {
      const auto& donor =
          corpus->document(static_cast<corpus::DocId>(
              i % corpus->num_documents()));
      std::vector<ontology::ConceptId> concepts(donor.concepts().begin(),
                                                donor.concepts().end());
      (void)engine->AddDocument(std::move(concepts));
      if (i % 8 == 0) engine->Flush();
    }
    engine->Flush();
  });

  // Poller: /status must stay reachable (it is served inline, never
  // shed) and its generation must never move backwards.
  std::atomic<int> status_failures{0};
  std::thread poller([&] {
    std::uint64_t last_generation = 0;
    for (int i = 0; i < kStatusPolls; ++i) {
      const auto response = serve_test::Get(port, "/status");
      if (!response.transport_ok || !response.complete ||
          response.status != 200) {
        status_failures.fetch_add(1);
        continue;
      }
      auto parsed = json::Parse(response.body);
      if (!parsed.ok() || !parsed->is_object()) {
        status_failures.fetch_add(1);
        continue;
      }
      const json::Value* snapshot = parsed->Find("snapshot");
      if (snapshot == nullptr || snapshot->Find("generation") == nullptr) {
        status_failures.fetch_add(1);
        continue;
      }
      const std::uint64_t generation = static_cast<std::uint64_t>(
          snapshot->Find("generation")->number);
      EXPECT_GE(generation, last_generation) << "generation went backwards";
      last_generation = generation;
    }
  });

  for (std::thread& client : clients) client.join();
  writer.join();
  poller.join();

  EXPECT_EQ(torn_responses.load(), 0);
  EXPECT_EQ(bad_statuses.load(), 0);
  EXPECT_EQ(status_failures.load(), 0);
  EXPECT_GT(ok_responses.load(), 0);

  // The writer really did publish while clients were in flight.
  EXPECT_GT(engine->snapshot_stats().generation, 1u);

  // /metrics stays coherent after the storm.
  const auto metrics = serve_test::Get(port, "/metrics");
  ASSERT_TRUE(metrics.transport_ok && metrics.complete);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("ecdr_request_latency_seconds_count"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ecdr_snapshot_generation"),
            std::string::npos);

  const ServerStats stats = server.stats();
  EXPECT_GT(stats.requests_received, 0u);
  EXPECT_EQ(stats.responses_ok, static_cast<std::uint64_t>(
                                    ok_responses.load()));
  server.Stop();
}

// Stop() under load: shutting the server down while clients are mid
// request must not crash, deadlock, or leave threads behind; clients
// simply see resets.
TEST(ServeSoakTest, StopUnderLoadIsClean) {
  ontology::OntologyGeneratorConfig onto_config;
  onto_config.num_concepts = 400;
  onto_config.seed = 11;
  auto ontology = ontology::GenerateOntology(onto_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 40;
  corpus_config.seed = 13;
  auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());
  auto engine = core::RankingEngine::Create(std::move(*ontology));
  ASSERT_TRUE(engine->AddCorpus(*corpus).ok());

  Server server(engine.get());
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  const auto queries = corpus::GenerateRdsQueries(*corpus, 4, 3, 5);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      std::string body = "{\"concepts\":[";
      for (std::size_t c = 0; c < queries[0].size(); ++c) {
        if (c > 0) body += ',';
        body += std::to_string(queries[0][c]);
      }
      body += "],\"k\":3}";
      while (!stop.load(std::memory_order_acquire)) {
        (void)serve_test::PostJson(port, "/v1/search", body);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();  // mid-flight
  stop.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  // Idempotent double stop.
  server.Stop();
}

}  // namespace
}  // namespace ecdr::serve
