#include "core/query_expansion.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "tests/fig3_fixture.h"

namespace ecdr::core {
namespace {

using corpus::Corpus;
using corpus::Document;
using ontology::AddressEnumerator;
using ontology::ConceptId;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

std::map<ConceptId, double> AsMap(const std::vector<WeightedConcept>& list) {
  std::map<ConceptId, double> map;
  for (const auto& wc : list) map[wc.concept_id] = wc.weight;
  return map;
}

TEST(QueryExpansionTest, SourceKeepsWeightOne) {
  const Fig3 fig3 = MakeFig3Ontology();
  const std::vector<ConceptId> query = {fig3['F']};
  const auto expanded = ExpandQuery(fig3.ontology, query);
  ASSERT_TRUE(expanded.ok());
  const auto map = AsMap(*expanded);
  EXPECT_DOUBLE_EQ(map.at(fig3['F']), 1.0);
}

TEST(QueryExpansionTest, WeightsDecayWithValidPathDistance) {
  const Fig3 fig3 = MakeFig3Ontology();
  QueryExpansionOptions options;
  options.radius = 2;
  options.decay = 0.5;
  options.max_expansions_per_concept = 100;
  const std::vector<ConceptId> query = {fig3['F']};
  const auto expanded = ExpandQuery(fig3.ontology, query, options);
  ASSERT_TRUE(expanded.ok());
  const auto map = AsMap(*expanded);
  // Level 1 from F: D, H, J at 0.5.
  EXPECT_DOUBLE_EQ(map.at(fig3['D']), 0.5);
  EXPECT_DOUBLE_EQ(map.at(fig3['H']), 0.5);
  EXPECT_DOUBLE_EQ(map.at(fig3['J']), 0.5);
  // Level 2: A, K, L, O, P at 0.25 — and NOT G (valid-path rule).
  EXPECT_DOUBLE_EQ(map.at(fig3['A']), 0.25);
  EXPECT_DOUBLE_EQ(map.at(fig3['L']), 0.25);
  EXPECT_FALSE(map.contains(fig3['G']));
  // Nothing beyond the radius.
  EXPECT_FALSE(map.contains(fig3['T']));  // distance 4 from F via H,K,S.
}

TEST(QueryExpansionTest, AncestorsOnlyClimbsUpward) {
  const Fig3 fig3 = MakeFig3Ontology();
  QueryExpansionOptions options;
  options.radius = 3;
  options.ancestors_only = true;
  options.max_expansions_per_concept = 100;
  const std::vector<ConceptId> query = {fig3['R']};
  const auto expanded = ExpandQuery(fig3.ontology, query, options);
  ASSERT_TRUE(expanded.ok());
  const auto map = AsMap(*expanded);
  // Ancestors of R within 3 hops: O(1), J(2), G(3), F(3).
  EXPECT_TRUE(map.contains(fig3['O']));
  EXPECT_TRUE(map.contains(fig3['J']));
  EXPECT_TRUE(map.contains(fig3['G']));
  EXPECT_TRUE(map.contains(fig3['F']));
  // No descendants or siblings.
  EXPECT_FALSE(map.contains(fig3['U']));
  EXPECT_FALSE(map.contains(fig3['V']));
}

TEST(QueryExpansionTest, OverlappingExpansionsKeepLargestWeight) {
  const Fig3 fig3 = MakeFig3Ontology();
  QueryExpansionOptions options;
  options.radius = 2;
  options.decay = 0.5;
  options.max_expansions_per_concept = 100;
  // J is 1 step from F (weight 0.5) and 2 steps from I via G (0.25).
  const std::vector<ConceptId> query = {fig3['F'], fig3['I']};
  const auto expanded = ExpandQuery(fig3.ontology, query, options);
  ASSERT_TRUE(expanded.ok());
  EXPECT_DOUBLE_EQ(AsMap(*expanded).at(fig3['J']), 0.5);
}

TEST(QueryExpansionTest, CapLimitsExpansionsPerConcept) {
  const Fig3 fig3 = MakeFig3Ontology();
  QueryExpansionOptions options;
  options.radius = 3;
  options.max_expansions_per_concept = 2;
  const std::vector<ConceptId> query = {fig3['F']};
  const auto expanded = ExpandQuery(fig3.ontology, query, options);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->size(), 3u);  // Source + 2 nearest.
}

TEST(QueryExpansionTest, ValidatesInput) {
  const Fig3 fig3 = MakeFig3Ontology();
  EXPECT_FALSE(ExpandQuery(fig3.ontology, {}).ok());
  const std::vector<ConceptId> bad = {9999};
  EXPECT_FALSE(ExpandQuery(fig3.ontology, bad).ok());
  QueryExpansionOptions options;
  options.decay = 0.0;
  const std::vector<ConceptId> query = {fig3['F']};
  EXPECT_FALSE(ExpandQuery(fig3.ontology, query, options).ok());
}

TEST(QueryExpansionTest, ExpandedSearchRecallsNearMissDocuments) {
  // The motivating case from the paper's introduction: a document about
  // "thrombosis" should surface for an "aortic valve stenosis"-adjacent
  // query once expansion pulls in nearby concepts. Here: doc contains
  // only L; the exact query {T} misses it at raw distance, but the
  // expanded query scores it through the shared ancestor H.
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['L']})).ok());   // doc 0
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['M']})).ok());   // doc 1 far
  index::InvertedIndex index(corpus);
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  Knds knds(corpus, index, &drc);

  QueryExpansionOptions options;
  options.radius = 3;
  options.decay = 0.5;
  options.max_expansions_per_concept = 100;
  const std::vector<ConceptId> query = {fig3['T']};
  const auto expanded = ExpandQuery(fig3.ontology, query, options);
  ASSERT_TRUE(expanded.ok());
  const auto results = knds.SearchRdsWeighted(*expanded, 2);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].id, 0u);  // The L-document wins.
  EXPECT_LT((*results)[0].distance, (*results)[1].distance);
}

}  // namespace
}  // namespace ecdr::core
