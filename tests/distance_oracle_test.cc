#include "ontology/distance_oracle.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/fig3_fixture.h"

namespace ecdr::ontology {
namespace {

using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

// Section 3.2: "the shortest path distance D(G, F) is not 2 but 5
// because it has to pass through one of their common ancestors, A."
TEST(DistanceOracleTest, PaperValidPathRuleGF) {
  const Fig3 fig3 = MakeFig3Ontology();
  DistanceOracle oracle(fig3.ontology);
  EXPECT_EQ(oracle.ConceptDistance(fig3['G'], fig3['F']), 5u);
  EXPECT_EQ(oracle.ConceptDistance(fig3['F'], fig3['G']), 5u);
}

TEST(DistanceOracleTest, AncestorDescendantDistances) {
  const Fig3 fig3 = MakeFig3Ontology();
  DistanceOracle oracle(fig3.ontology);
  EXPECT_EQ(oracle.ConceptDistance(fig3['A'], fig3['A']), 0u);
  EXPECT_EQ(oracle.ConceptDistance(fig3['A'], fig3['F']), 2u);
  EXPECT_EQ(oracle.ConceptDistance(fig3['F'], fig3['L']), 2u);
  // J to U: straight descent J -> O -> R -> U.
  EXPECT_EQ(oracle.ConceptDistance(fig3['J'], fig3['U']), 3u);
  // F is J's parent.
  EXPECT_EQ(oracle.ConceptDistance(fig3['F'], fig3['J']), 1u);
}

TEST(DistanceOracleTest, MultiParentShortcutsAreUsed) {
  const Fig3 fig3 = MakeFig3Ontology();
  DistanceOracle oracle(fig3.ontology);
  // R to F: up through J to F = 3 (not through A = 5 + 2).
  EXPECT_EQ(oracle.ConceptDistance(fig3['R'], fig3['F']), 3u);
  // I to R: up to G (1), down G -> J -> O -> R (3).
  EXPECT_EQ(oracle.ConceptDistance(fig3['I'], fig3['R']), 4u);
}

// Example 1: d = {F, R, T, V}, q = {I, L, U}:
//   Ddq(d, q) = Ddc(d, I) + Ddc(d, L) + Ddc(d, U) = 4 + 2 + 1 = 7.
TEST(DistanceOracleTest, PaperExample1DocQueryDistance) {
  const Fig3 fig3 = MakeFig3Ontology();
  DistanceOracle oracle(fig3.ontology);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  EXPECT_EQ(oracle.DocConceptDistance(d, fig3['I']), 4u);
  EXPECT_EQ(oracle.DocConceptDistance(d, fig3['L']), 2u);
  EXPECT_EQ(oracle.DocConceptDistance(d, fig3['U']), 1u);
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  EXPECT_EQ(oracle.DocQueryDistance(d, q), 7u);
}

// The SDS counterpart on the same sets: Ddd(d, q) per Eq. 3.
//   Ddc(q, F) = 2, Ddc(q, R) = 1, Ddc(q, T) = 4, Ddc(q, V) = 5.
//   Ddd = (2+1+4+5)/4 + (4+2+1)/3 = 3 + 7/3.
TEST(DistanceOracleTest, PaperExample1DocDocDistance) {
  const Fig3 fig3 = MakeFig3Ontology();
  DistanceOracle oracle(fig3.ontology);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  EXPECT_EQ(oracle.DocConceptDistance(q, fig3['F']), 2u);
  EXPECT_EQ(oracle.DocConceptDistance(q, fig3['R']), 1u);
  EXPECT_EQ(oracle.DocConceptDistance(q, fig3['T']), 4u);
  EXPECT_EQ(oracle.DocConceptDistance(q, fig3['V']), 5u);
  EXPECT_DOUBLE_EQ(oracle.DocDocDistance(d, q), 12.0 / 4 + 7.0 / 3);
  // Symmetry (Eq. 3 is symmetric).
  EXPECT_DOUBLE_EQ(oracle.DocDocDistance(q, d), oracle.DocDocDistance(d, q));
}

TEST(DistanceOracleTest, DistanceToSelfWithinDocumentIsZero) {
  const Fig3 fig3 = MakeFig3Ontology();
  DistanceOracle oracle(fig3.ontology);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R']};
  EXPECT_EQ(oracle.DocConceptDistance(d, fig3['F']), 0u);
  EXPECT_DOUBLE_EQ(oracle.DocDocDistance(d, d), 0.0);
}

TEST(DistanceOracleTest, UpDistancesAreMinimal) {
  const Fig3 fig3 = MakeFig3Ontology();
  DistanceOracle oracle(fig3.ontology);
  std::unordered_map<ConceptId, std::uint32_t> up;
  oracle.UpDistances(fig3['R'], &up);
  EXPECT_EQ(up.at(fig3['R']), 0u);
  EXPECT_EQ(up.at(fig3['O']), 1u);
  EXPECT_EQ(up.at(fig3['J']), 2u);
  EXPECT_EQ(up.at(fig3['F']), 3u);   // Via J's F-parent.
  EXPECT_EQ(up.at(fig3['A']), 5u);   // min(G-side 5, F-side 5).
  EXPECT_FALSE(up.contains(fig3['L']));  // Not an ancestor.
}

TEST(DistanceOracleTest, DuplicateConceptsCountOnce) {
  const Fig3 fig3 = MakeFig3Ontology();
  DistanceOracle oracle(fig3.ontology);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['I'], fig3['L']};
  const std::vector<ConceptId> q_set = {fig3['I'], fig3['L']};
  EXPECT_EQ(oracle.DocQueryDistance(d, q), oracle.DocQueryDistance(d, q_set));
}

TEST(DistanceOracleTest, DistancesFromSetMatchesSingleSources) {
  const Fig3 fig3 = MakeFig3Ontology();
  DistanceOracle oracle(fig3.ontology);
  const std::vector<ConceptId> sources = {fig3['F'], fig3['I']};
  std::vector<std::uint32_t> dist;
  oracle.DistancesFromSet(sources, &dist);
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    const std::uint32_t expected =
        std::min(oracle.ConceptDistance(fig3['F'], c),
                 oracle.ConceptDistance(fig3['I'], c));
    EXPECT_EQ(dist[c], expected) << fig3.ontology.name(c);
  }
}

}  // namespace
}  // namespace ecdr::ontology
