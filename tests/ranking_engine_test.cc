#include "core/ranking_engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "corpus/corpus_io.h"
#include "ontology/ontology_io.h"
#include "tests/fig3_fixture.h"

namespace ecdr::core {
namespace {

using ontology::ConceptId;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

std::unique_ptr<RankingEngine> MakeEngine() {
  Fig3 fig3 = MakeFig3Ontology();
  auto engine = RankingEngine::Create(std::move(fig3.ontology));
  const auto& onto = engine->ontology();
  const auto c = [&](const char* name) { return onto.FindByName(name); };
  ECDR_CHECK(engine->AddDocument({c("F"), c("R")}).ok());
  ECDR_CHECK(engine->AddDocument({c("I"), c("M")}).ok());
  ECDR_CHECK(engine->AddDocument({c("T"), c("V")}).ok());
  ECDR_CHECK(engine->AddDocument({c("L")}).ok());
  return engine;
}

TEST(RankingEngineTest, EndToEndRds) {
  const auto engine = MakeEngine();
  const std::vector<ConceptId> query = {engine->ontology().FindByName("F")};
  const auto results = engine->FindRelevant(query, 2);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].id, 0u);  // Contains F itself.
  EXPECT_DOUBLE_EQ((*results)[0].distance, 0.0);
}

TEST(RankingEngineTest, FindRelevantByName) {
  const auto engine = MakeEngine();
  const std::vector<std::string_view> names = {"F", "I"};
  const auto results = engine->FindRelevantByName(names, 4);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 4u);
  const std::vector<std::string_view> bad = {"nonexistent"};
  const auto missing = engine->FindRelevantByName(bad, 4);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST(RankingEngineTest, FindSimilarAndDistance) {
  const auto engine = MakeEngine();
  const auto results = engine->FindSimilar(0, 4);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ((*results)[0].id, 0u);
  EXPECT_DOUBLE_EQ((*results)[0].distance, 0.0);
  const auto distance = engine->DocumentDistance(0, 0);
  ASSERT_TRUE(distance.ok());
  EXPECT_DOUBLE_EQ(*distance, 0.0);
  EXPECT_FALSE(engine->FindSimilar(99, 1).ok());
  EXPECT_FALSE(engine->DocumentDistance(0, 99).ok());
}

TEST(RankingEngineTest, FindSimilarToExternalConcepts) {
  const auto engine = MakeEngine();
  const auto& onto = engine->ontology();
  const auto results = engine->FindSimilarToConcepts(
      {onto.FindByName("T"), onto.FindByName("V")}, 1);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].id, 2u);  // The {T, V} document.
  EXPECT_DOUBLE_EQ((*results)[0].distance, 0.0);
  EXPECT_FALSE(engine->FindSimilarToConcepts({}, 1).ok());
}

TEST(RankingEngineTest, AddDocumentIsImmediatelySearchable) {
  const auto engine = MakeEngine();
  const auto& onto = engine->ontology();
  const auto id = engine->AddDocument({onto.FindByName("N")});
  ASSERT_TRUE(id.ok());
  const std::vector<ConceptId> query = {onto.FindByName("N")};
  const auto results = engine->FindRelevant(query, 1);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ((*results)[0].id, *id);
  EXPECT_DOUBLE_EQ((*results)[0].distance, 0.0);
  EXPECT_FALSE(engine->AddDocument({}).ok());
  EXPECT_FALSE(engine->AddDocument({12345}).ok());
}

TEST(RankingEngineTest, WeightedQueries) {
  const auto engine = MakeEngine();
  const auto& onto = engine->ontology();
  const std::vector<WeightedConcept> query = {
      {onto.FindByName("F"), 2.0}, {onto.FindByName("I"), 0.5}};
  const auto results = engine->FindRelevantWeighted(query, 4);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 4u);
}

TEST(RankingEngineTest, CreateFromFiles) {
  Fig3 fig3 = MakeFig3Ontology();
  const std::string ontology_path =
      ::testing::TempDir() + "/engine_ontology.txt";
  const std::string corpus_path = ::testing::TempDir() + "/engine_corpus.txt";
  ASSERT_TRUE(ontology::SaveOntology(fig3.ontology, ontology_path).ok());
  {
    corpus::Corpus corpus(fig3.ontology);
    ASSERT_TRUE(
        corpus.AddDocument(corpus::Document({fig3['F'], fig3['R']})).ok());
    ASSERT_TRUE(corpus::SaveCorpus(corpus, corpus_path).ok());
  }
  auto engine = RankingEngine::CreateFromFiles(ontology_path, corpus_path);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->corpus().num_documents(), 1u);
  const std::vector<ConceptId> query = {
      (*engine)->ontology().FindByName("F")};
  const auto results = (*engine)->FindRelevant(query, 1);
  ASSERT_TRUE(results.ok());
  EXPECT_DOUBLE_EQ((*results)[0].distance, 0.0);

  EXPECT_FALSE(
      RankingEngine::CreateFromFiles("/nonexistent", corpus_path).ok());
  EXPECT_FALSE(
      RankingEngine::CreateFromFiles(ontology_path, "/nonexistent").ok());
  std::remove(ontology_path.c_str());
  std::remove(corpus_path.c_str());
}

}  // namespace
}  // namespace ecdr::core
