#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "index/forward_index.h"
#include "index/precomputed_postings.h"
#include "ontology/distance_oracle.h"
#include "tests/fig3_fixture.h"

namespace ecdr::index {
namespace {

using corpus::Corpus;
using corpus::DocId;
using corpus::Document;
using ontology::ConceptId;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

TEST(InvertedIndexTest, PostingsMatchBruteForce) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F'], fig3['R']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['R'], fig3['T']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['I']})).ok());
  const InvertedIndex index(corpus);
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    std::vector<DocId> expected;
    for (DocId d = 0; d < corpus.num_documents(); ++d) {
      if (corpus.document(d).ContainsConcept(c)) expected.push_back(d);
    }
    const auto postings = index.Postings(c);
    EXPECT_TRUE(std::equal(postings.begin(), postings.end(),
                           expected.begin(), expected.end()))
        << fig3.ontology.name(c);
  }
}

TEST(InvertedIndexTest, IncrementalAddKeepsOrder) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F']})).ok());
  InvertedIndex index(corpus);
  EXPECT_EQ(index.num_indexed_documents(), 1u);

  const auto id = corpus.AddDocument(Document({fig3['F'], fig3['R']}));
  ASSERT_TRUE(id.ok());
  index.AddDocument(*id, corpus.document(*id));
  EXPECT_EQ(index.num_indexed_documents(), 2u);
  const auto postings = index.Postings(fig3['F']);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0], 0u);
  EXPECT_EQ(postings[1], 1u);
}

TEST(ForwardIndexTest, MirrorsCorpus) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F'], fig3['R']})).ok());
  const ForwardIndex forward(corpus);
  EXPECT_EQ(forward.num_documents(), 1u);
  EXPECT_EQ(forward.NumConcepts(0), 2u);
  EXPECT_TRUE(forward.Contains(0, fig3['F']));
  EXPECT_FALSE(forward.Contains(0, fig3['L']));
}

TEST(PrecomputedPostingsTest, DistancesMatchOracleAndListsAreSorted) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F'], fig3['R']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['I'], fig3['M']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['T']})).ok());
  const PrecomputedPostings postings(corpus);
  ontology::DistanceOracle oracle(fig3.ontology);

  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    const auto list = postings.SortedPostings(c);
    ASSERT_EQ(list.size(), corpus.num_documents());
    for (std::size_t i = 0; i + 1 < list.size(); ++i) {
      EXPECT_LE(list[i].distance, list[i + 1].distance);
    }
    for (DocId d = 0; d < corpus.num_documents(); ++d) {
      EXPECT_EQ(postings.Distance(c, d),
                oracle.DocConceptDistance(corpus.document(d).concepts(), c))
          << "concept " << fig3.ontology.name(c) << " doc " << d;
    }
  }
  EXPECT_GT(postings.memory_bytes(), 0u);
  EXPECT_GE(postings.build_seconds(), 0.0);
}

}  // namespace
}  // namespace ecdr::index
