#include "core/semantic_similarity.h"

#include <gtest/gtest.h>

#include <vector>

#include "ontology/distance_oracle.h"
#include "tests/fig3_fixture.h"

namespace ecdr::core {
namespace {

using corpus::Corpus;
using corpus::Document;
using ontology::ConceptId;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

Corpus MakeSmallCorpus(const Fig3& fig3) {
  Corpus corpus(fig3.ontology);
  ECDR_CHECK(corpus.AddDocument(Document({fig3['F'], fig3['R']})).ok());
  ECDR_CHECK(corpus.AddDocument(Document({fig3['R'], fig3['U']})).ok());
  ECDR_CHECK(corpus.AddDocument(Document({fig3['I']})).ok());
  return corpus;
}

TEST(SemanticSimilarityTest, ShortestPathMatchesOracle) {
  const Fig3 fig3 = MakeFig3Ontology();
  ConceptSimilarity similarity(fig3.ontology, nullptr,
                               SemanticMeasure::kShortestPath);
  ontology::DistanceOracle oracle(fig3.ontology);
  for (char a : {'F', 'G', 'R', 'L'}) {
    for (char b : {'A', 'I', 'T', 'V'}) {
      EXPECT_DOUBLE_EQ(similarity.Distance(fig3[a], fig3[b]),
                       oracle.ConceptDistance(fig3[a], fig3[b]))
          << a << " vs " << b;
    }
  }
}

TEST(SemanticSimilarityTest, MeasuresAreSymmetricAndZeroOnIdentity) {
  const Fig3 fig3 = MakeFig3Ontology();
  const Corpus corpus = MakeSmallCorpus(fig3);
  for (const SemanticMeasure measure :
       {SemanticMeasure::kShortestPath, SemanticMeasure::kWuPalmer,
        SemanticMeasure::kLin}) {
    ConceptSimilarity similarity(fig3.ontology, &corpus, measure);
    EXPECT_DOUBLE_EQ(similarity.Distance(fig3['R'], fig3['R']), 0.0)
        << SemanticMeasureName(measure);
    for (char a : {'F', 'I', 'R'}) {
      for (char b : {'L', 'T', 'G'}) {
        EXPECT_DOUBLE_EQ(similarity.Distance(fig3[a], fig3[b]),
                         similarity.Distance(fig3[b], fig3[a]))
            << SemanticMeasureName(measure);
      }
    }
  }
}

TEST(SemanticSimilarityTest, WuPalmerAndLinAreBounded) {
  const Fig3 fig3 = MakeFig3Ontology();
  const Corpus corpus = MakeSmallCorpus(fig3);
  for (const SemanticMeasure measure :
       {SemanticMeasure::kWuPalmer, SemanticMeasure::kLin}) {
    ConceptSimilarity similarity(fig3.ontology, &corpus, measure);
    for (ConceptId a = 0; a < fig3.ontology.num_concepts(); ++a) {
      for (ConceptId b = a; b < fig3.ontology.num_concepts(); b += 3) {
        const double d = similarity.Distance(a, b);
        EXPECT_GE(d, 0.0) << SemanticMeasureName(measure);
        EXPECT_LE(d, 1.0) << SemanticMeasureName(measure);
      }
    }
  }
}

TEST(SemanticSimilarityTest, InformationContentDecreasesTowardRoot) {
  const Fig3 fig3 = MakeFig3Ontology();
  const Corpus corpus = MakeSmallCorpus(fig3);
  ConceptSimilarity similarity(fig3.ontology, &corpus,
                               SemanticMeasure::kResnik);
  EXPECT_DOUBLE_EQ(similarity.InformationContent(fig3['A']), 0.0);
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    for (ConceptId parent : fig3.ontology.parents(c)) {
      EXPECT_LE(similarity.InformationContent(parent),
                similarity.InformationContent(c) + 1e-12)
          << fig3.ontology.name(parent) << " vs " << fig3.ontology.name(c);
    }
  }
}

TEST(SemanticSimilarityTest, CloserPairsScoreCloser) {
  // Under every measure, R and U (parent/child, deep) should be closer
  // than R and L (opposite subtrees).
  const Fig3 fig3 = MakeFig3Ontology();
  const Corpus corpus = MakeSmallCorpus(fig3);
  for (const SemanticMeasure measure :
       {SemanticMeasure::kShortestPath, SemanticMeasure::kWuPalmer,
        SemanticMeasure::kResnik, SemanticMeasure::kLin}) {
    ConceptSimilarity similarity(fig3.ontology, &corpus, measure);
    EXPECT_LT(similarity.Distance(fig3['R'], fig3['U']),
              similarity.Distance(fig3['R'], fig3['L']))
        << SemanticMeasureName(measure);
  }
}

TEST(SemanticSimilarityTest, DocDocGeneralizationReducesToEq3) {
  const Fig3 fig3 = MakeFig3Ontology();
  ConceptSimilarity similarity(fig3.ontology, nullptr,
                               SemanticMeasure::kShortestPath);
  ontology::DistanceOracle oracle(fig3.ontology);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  EXPECT_DOUBLE_EQ(similarity.DocDocDistance(d, q),
                   oracle.DocDocDistance(d, q));
}

}  // namespace
}  // namespace ecdr::core
