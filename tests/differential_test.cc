// Differential correctness harness for the cache layer (and the
// speculative-wave parallel path it composes with): over seeded random
// ontologies and corpora, every Knds configuration — cache off/on ×
// 1/8 verification threads, cold and warm — must return top-k results
// that agree bit-for-bit with an oracle computed from the quadratic
// BaselineDistance ("BL" in the paper's Fig. 6), which shares no code
// with DRC's D-Radix machinery beyond the ontology itself.
//
// Distances compare with exact ==, not a tolerance: RDS distances are
// integer sums, and both Ddd implementations evaluate the same
// double(sum)/double(count) + double(sum)/double(count) expression over
// exact integer sums, so IEEE determinism makes agreement bitwise. The
// memo stores exactly the double DRC returned, so warm (memo-hit)
// searches cannot drift either.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/baseline_distance.h"
#include "core/distance_cache.h"
#include "core/drc.h"
#include "core/knds.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "index/inverted_index.h"
#include "index/sharded_index.h"
#include "ontology/dewey.h"
#include "ontology/generator.h"

namespace ecdr::core {
namespace {

ontology::Ontology MakeOntology(std::uint64_t seed) {
  ontology::OntologyGeneratorConfig config;
  // Vary the shape with the seed: size 600..1'200, tree to dense DAG.
  config.num_concepts = 600 + (seed % 4) * 200;
  config.extra_parent_prob = 0.15 * (seed % 3);
  config.seed = seed;
  auto ontology = ontology::GenerateOntology(config);
  EXPECT_TRUE(ontology.ok());
  return std::move(ontology).value();
}

corpus::Corpus MakeCorpus(const ontology::Ontology& ontology,
                          std::uint64_t seed) {
  corpus::CorpusGeneratorConfig config;
  config.num_documents = 60 + (seed % 5) * 10;
  config.avg_concepts_per_doc = 10 + (seed % 3) * 5;
  config.seed = seed * 7919 + 1;
  auto corpus = corpus::GenerateCorpus(ontology, config);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

/// Oracle top-k by scoring EVERY document with the quadratic baseline
/// and sorting by the (distance, id) total order.
std::vector<ScoredDocument> BaselineTopK(
    BaselineDistance* baseline, const corpus::Corpus& corpus,
    std::span<const ontology::ConceptId> query, bool sds, std::uint32_t k) {
  std::vector<ScoredDocument> all;
  all.reserve(corpus.num_documents());
  for (corpus::DocId d = 0; d < corpus.num_documents(); ++d) {
    const auto doc = corpus.document(d).concepts();
    double distance = 0.0;
    if (sds) {
      const auto ddd = baseline->DocDocDistance(query, doc);
      EXPECT_TRUE(ddd.ok());
      distance = *ddd;
    } else {
      const auto ddq = baseline->DocQueryDistance(doc, query);
      EXPECT_TRUE(ddq.ok());
      distance = static_cast<double>(*ddq);
    }
    all.push_back(ScoredDocument{d, distance});
  }
  std::sort(all.begin(), all.end(), ScoredBefore);
  if (all.size() > k) all.resize(k);
  return all;
}

void ExpectBitIdentical(const std::vector<ScoredDocument>& want,
                        const std::vector<ScoredDocument>& got,
                        const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id) << label << " rank " << i;
    EXPECT_EQ(want[i].distance, got[i].distance) << label << " rank " << i;
  }
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, KndsMatchesQuadraticOracleAcrossCacheAndThreads) {
  const std::uint64_t seed = GetParam();
  const ontology::Ontology ontology = MakeOntology(seed);
  const corpus::Corpus corpus = MakeCorpus(ontology, seed);
  const index::InvertedIndex index(corpus);
  BaselineDistance baseline(ontology);

  ontology::AddressEnumerator enumerator(ontology);
  enumerator.PrecomputeAll();

  const std::uint32_t k = 1 + (seed % 3) * 4;  // 1, 5 or 9.
  const auto rds_queries =
      corpus::GenerateRdsQueries(corpus, 2, 3 + seed % 3, seed * 13 + 7);
  // SDS query: one corpus document per seed.
  const corpus::DocId sds_doc =
      static_cast<corpus::DocId>(seed % corpus.num_documents());

  struct Config {
    bool cache;
    std::size_t threads;
    bool reuse;  // Skeleton + doc-DAG structure reuse in DRC.
    const char* name;
  };
  const Config configs[] = {
      {false, 1, true, "cache-off/1-thread"},
      {false, 8, true, "cache-off/8-threads"},
      {true, 1, true, "cache-on/1-thread"},
      {true, 8, true, "cache-on/8-threads"},
      // The reuse-off rows pin the reuse paths down differentially: every
      // distance the reusing engines returned above must also fall out of
      // per-call rebuilds (and both must match the quadratic oracle).
      {false, 8, false, "cache-off/8-threads/no-reuse"},
      {true, 8, false, "cache-on/8-threads/no-reuse"},
  };

  for (const Config& config : configs) {
    KndsOptions options;
    options.num_threads = config.threads;
    // Sweep the error gate with the seed; every setting must stay exact.
    options.error_threshold = 0.5 * (seed % 3);
    // Route every exact distance through DRC (and thus the memo): the
    // shortcut would otherwise serve fully-covered documents from BFS
    // partial sums and leave the memo untouched on low-threshold seeds.
    options.covered_distance_shortcut = false;
    options.cache.enable_ddq_memo = config.cache;
    DdqMemo memo(options.cache);
    DrcOptions drc_options;
    drc_options.skeleton_reuse = config.reuse;
    if (!config.reuse) drc_options.doc_dag_cache_capacity = 0;
    Drc drc(ontology, &enumerator, nullptr, drc_options);
    Knds knds(corpus, index, &drc, options, nullptr,
              config.cache ? &memo : nullptr);

    // Two passes: pass 0 is cold, pass 1 re-runs every query against the
    // now-warm memo (for cache-off configs it just re-checks stability).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& query : rds_queries) {
        const auto want =
            BaselineTopK(&baseline, corpus, query, /*sds=*/false, k);
        const auto got = knds.SearchRds(query, k);
        ASSERT_TRUE(got.ok()) << config.name;
        ExpectBitIdentical(want, *got, config.name);
      }
      const auto query_doc = corpus.document(sds_doc).concepts();
      const auto want_sds =
          BaselineTopK(&baseline, corpus, query_doc, /*sds=*/true, k);
      const auto got_sds = knds.SearchSds(corpus.document(sds_doc), k);
      ASSERT_TRUE(got_sds.ok()) << config.name;
      ExpectBitIdentical(want_sds, *got_sds, config.name);
    }
    if (config.cache) {
      // The warm pass must actually exercise the memo.
      EXPECT_GT(memo.counters().hits, 0u) << config.name;
    } else {
      EXPECT_EQ(memo.counters().lookups(), 0u) << config.name;
    }
  }
}

// Sharding the index must be invisible to search: shards cover
// contiguous ascending id ranges and Knds walks them in order, so the
// posting iteration sequence — and with it every first-touch Ld
// bookkeeping decision — is identical at any shard count. Verified
// bit-for-bit against the single-index run over the same 20 seeds.
TEST_P(DifferentialTest, ShardedIndexBitIdenticalAtAnyShardCount) {
  const std::uint64_t seed = GetParam();
  const ontology::Ontology ontology = MakeOntology(seed);
  const corpus::Corpus corpus = MakeCorpus(ontology, seed);
  const index::InvertedIndex index(corpus);

  ontology::AddressEnumerator enumerator(ontology);
  enumerator.PrecomputeAll();

  const std::uint32_t k = 1 + (seed % 3) * 4;
  const auto rds_queries =
      corpus::GenerateRdsQueries(corpus, 2, 3 + seed % 3, seed * 13 + 7);
  const corpus::DocId sds_doc =
      static_cast<corpus::DocId>(seed % corpus.num_documents());

  KndsOptions options;
  options.error_threshold = 0.5 * (seed % 3);

  // Reference: the historical single whole-corpus index.
  std::vector<std::vector<ScoredDocument>> want_rds;
  std::vector<ScoredDocument> want_sds;
  {
    Drc drc(ontology, &enumerator);
    Knds knds(corpus, index, &drc, options);
    for (const auto& query : rds_queries) {
      auto got = knds.SearchRds(query, k);
      ASSERT_TRUE(got.ok());
      want_rds.push_back(*std::move(got));
    }
    auto got = knds.SearchSds(corpus.document(sds_doc), k);
    ASSERT_TRUE(got.ok());
    want_sds = *std::move(got);
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}}) {
    const corpus::Corpus resharded = corpus::Resharded(corpus, shards);
    ASSERT_EQ(resharded.num_documents(), corpus.num_documents());
    const index::ShardedIndex sharded(resharded);
    EXPECT_EQ(sharded.num_shards(), resharded.num_segments());

    Drc drc(ontology, &enumerator);
    Knds knds(resharded, sharded, &drc, options);
    for (std::size_t q = 0; q < rds_queries.size(); ++q) {
      const auto got = knds.SearchRds(rds_queries[q], k);
      ASSERT_TRUE(got.ok()) << shards << " shards";
      ExpectBitIdentical(want_rds[q], *got, "sharded rds");
    }
    const auto got_sds = knds.SearchSds(resharded.document(sds_doc), k);
    ASSERT_TRUE(got_sds.ok()) << shards << " shards";
    ExpectBitIdentical(want_sds, *got_sds, "sharded sds");
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, DifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace ecdr::core
