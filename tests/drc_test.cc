#include "core/drc.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/baseline_distance.h"
#include "ontology/distance_oracle.h"
#include "ontology/generator.h"
#include "tests/fig3_fixture.h"
#include "util/random.h"

namespace ecdr::core {
namespace {

using ontology::AddressEnumerator;
using ontology::ConceptId;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

TEST(DrcTest, PaperExample1Distances) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  const auto ddq = drc.DocQueryDistance(d, q);
  ASSERT_TRUE(ddq.ok());
  EXPECT_EQ(*ddq, 7u);  // Example 1: 4 + 2 + 1.
  const auto ddd = drc.DocDocDistance(d, q);
  ASSERT_TRUE(ddd.ok());
  EXPECT_DOUBLE_EQ(*ddd, 12.0 / 4 + 7.0 / 3);
}

TEST(DrcTest, DddIsSymmetric) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  EXPECT_DOUBLE_EQ(*drc.DocDocDistance(d, q), *drc.DocDocDistance(q, d));
}

TEST(DrcTest, IdenticalDocumentsAreAtDistanceZero) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T']};
  EXPECT_DOUBLE_EQ(*drc.DocDocDistance(d, d), 0.0);
  EXPECT_EQ(*drc.DocQueryDistance(d, d), 0u);
}

TEST(DrcTest, EmptyInputsAreRejected) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F']};
  const std::vector<ConceptId> empty;
  EXPECT_FALSE(drc.DocQueryDistance(empty, d).ok());
  EXPECT_FALSE(drc.DocQueryDistance(d, empty).ok());
  EXPECT_FALSE(drc.DocDocDistance(empty, d).ok());
}

TEST(DrcTest, UnknownConceptsAreRejected) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F']};
  const std::vector<ConceptId> bad = {999};
  const auto result = drc.DocQueryDistance(d, bad);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(DrcTest, DuplicateQueryConceptsCountOnce) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R']};
  const std::vector<ConceptId> q1 = {fig3['I'], fig3['I'], fig3['L']};
  const std::vector<ConceptId> q2 = {fig3['I'], fig3['L']};
  EXPECT_EQ(*drc.DocQueryDistance(d, q1), *drc.DocQueryDistance(d, q2));
}

TEST(DrcTest, QueryOverlappingDocument) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R']};
  const std::vector<ConceptId> q = {fig3['F'], fig3['L']};
  // Ddc(d, F) = 0, Ddc(d, L) = 2 (L up H up F).
  EXPECT_EQ(*drc.DocQueryDistance(d, q), 2u);
}

TEST(DrcTest, RootAsQueryConcept) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F']};
  const std::vector<ConceptId> q = {fig3['A']};
  EXPECT_EQ(*drc.DocQueryDistance(d, q), 2u);  // F up D up A.
}

TEST(DrcTest, StatsAccumulate) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R']};
  const std::vector<ConceptId> q = {fig3['I']};
  ASSERT_TRUE(drc.DocQueryDistance(d, q).ok());
  EXPECT_EQ(drc.stats().calls, 1u);
  // F has 1 address, R has 2, I has 1 -> 4 insertions.
  EXPECT_EQ(drc.stats().addresses_inserted, 4u);
  ASSERT_TRUE(drc.DocQueryDistance(d, q).ok());
  EXPECT_EQ(drc.stats().calls, 2u);
  drc.ResetStats();
  EXPECT_EQ(drc.stats().calls, 0u);
}

// Three-way agreement on random ontologies: DRC == quadratic baseline ==
// multi-source-BFS oracle, for both Ddq and Ddd. This is the paper's
// core correctness claim for Section 4.
struct AgreementParam {
  std::uint64_t seed;
  std::uint32_t num_concepts;
  double extra_parent_prob;
};

class DistanceAgreementTest
    : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(DistanceAgreementTest, DrcMatchesBaselineAndOracle) {
  const AgreementParam param = GetParam();
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = param.num_concepts;
  config.extra_parent_prob = param.extra_parent_prob;
  config.seed = param.seed;
  const auto ontology = ontology::GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());

  AddressEnumerator enumerator(*ontology);
  Drc drc(*ontology, &enumerator);
  BaselineDistance baseline(*ontology);
  ontology::DistanceOracle oracle(*ontology);
  util::Rng rng(param.seed * 1009 + 17);

  for (int trial = 0; trial < 8; ++trial) {
    const auto nd = static_cast<std::uint32_t>(rng.UniformInt(1, 20));
    const auto nq = static_cast<std::uint32_t>(rng.UniformInt(1, 10));
    const std::vector<ConceptId> doc =
        rng.SampleWithoutReplacement(ontology->num_concepts(), nd);
    const std::vector<ConceptId> query =
        rng.SampleWithoutReplacement(ontology->num_concepts(), nq);

    const auto drc_ddq = drc.DocQueryDistance(doc, query);
    ASSERT_TRUE(drc_ddq.ok());
    EXPECT_EQ(*drc_ddq, oracle.DocQueryDistance(doc, query));
    EXPECT_EQ(*drc_ddq, *baseline.DocQueryDistance(doc, query));

    const auto drc_ddd = drc.DocDocDistance(doc, query);
    ASSERT_TRUE(drc_ddd.ok());
    EXPECT_DOUBLE_EQ(*drc_ddd, oracle.DocDocDistance(doc, query));
    EXPECT_DOUBLE_EQ(*drc_ddd, *baseline.DocDocDistance(doc, query));
  }
}

// ---- Reuse paths ----------------------------------------------------
//
// The three build strategies — full per-call rebuild (skeleton_reuse
// off), persistent query skeleton with per-document merge/rollback, and
// the per-document DAG cache (copy + query insert) — must return
// bit-identical distances on identical inputs; they differ only in how
// much work is repeated. Exercised on a frozen enumerator (the pool is
// what both reuse paths require).
TEST(DrcReuseTest, AllBuildPathsReturnIdenticalDistances) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 500;
  config.extra_parent_prob = 0.3;
  config.seed = 123;
  const auto ontology = ontology::GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  AddressEnumerator enumerator(*ontology);
  enumerator.PrecomputeAll();
  ASSERT_NE(enumerator.flat_pool(), nullptr);

  DrcOptions off;
  off.skeleton_reuse = false;
  DrcOptions skeleton_only;
  skeleton_only.doc_dag_cache_capacity = 0;  // Force the skeleton path.
  Drc drc_off(*ontology, &enumerator, nullptr, off);
  Drc drc_skeleton(*ontology, &enumerator, nullptr, skeleton_only);
  Drc drc_full(*ontology, &enumerator);  // Doc-DAG cache + skeleton.

  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<ConceptId> query =
        rng.SampleWithoutReplacement(ontology->num_concepts(), 4);
    // Sweep several docs per query so the skeleton actually persists.
    for (int d = 0; d < 3; ++d) {
      const std::vector<ConceptId> doc =
          rng.SampleWithoutReplacement(ontology->num_concepts(), 10);
      const auto want = drc_off.DocQueryDistance(doc, query);
      const auto got_skeleton = drc_skeleton.DocQueryDistance(doc, query);
      const auto got_full = drc_full.DocQueryDistance(doc, query);
      ASSERT_TRUE(want.ok() && got_skeleton.ok() && got_full.ok());
      EXPECT_EQ(*want, *got_skeleton) << "trial " << trial;
      EXPECT_EQ(*want, *got_full) << "trial " << trial;

      const auto want_ddd = drc_off.DocDocDistance(query, doc);
      const auto got_ddd = drc_full.DocDocDistance(query, doc);
      ASSERT_TRUE(want_ddd.ok() && got_ddd.ok());
      EXPECT_EQ(*want_ddd, *got_ddd) << "trial " << trial;
    }
  }
}

TEST(DrcReuseTest, SkeletonStatsCountBuildsReusesAndDetaches) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 400;
  config.seed = 5;
  const auto ontology = ontology::GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  AddressEnumerator enumerator(*ontology);
  enumerator.PrecomputeAll();

  DrcOptions options;
  options.doc_dag_cache_capacity = 0;  // Keep ddq on the skeleton path.
  Drc drc(*ontology, &enumerator, nullptr, options);
  util::Rng rng(7);
  const std::vector<ConceptId> query =
      rng.SampleWithoutReplacement(ontology->num_concepts(), 5);
  for (int d = 0; d < 4; ++d) {
    const std::vector<ConceptId> doc =
        rng.SampleWithoutReplacement(ontology->num_concepts(), 8);
    ASSERT_TRUE(drc.DocQueryDistance(doc, query).ok());
  }
  const Drc::Stats& stats = drc.stats();
  // One skeleton build for the sweep, then three reuses, each of which
  // first detached the previous document's merged paths.
  EXPECT_EQ(stats.skeleton_builds, 1u);
  EXPECT_EQ(stats.skeleton_reuses, 3u);
  EXPECT_GT(stats.doc_paths_merged, 0u);
  EXPECT_GT(stats.doc_paths_detached, 0u);
  EXPECT_GT(stats.eval_seconds, 0.0);

  // A different query invalidates the skeleton: one more build.
  const std::vector<ConceptId> other =
      rng.SampleWithoutReplacement(ontology->num_concepts(), 5);
  const std::vector<ConceptId> doc =
      rng.SampleWithoutReplacement(ontology->num_concepts(), 8);
  ASSERT_TRUE(drc.DocQueryDistance(doc, other).ok());
  EXPECT_EQ(drc.stats().skeleton_builds, 2u);
}

TEST(DrcReuseTest, DocDagCacheStatsCountBuildsAndHits) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 400;
  config.seed = 6;
  const auto ontology = ontology::GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  AddressEnumerator enumerator(*ontology);
  enumerator.PrecomputeAll();

  Drc drc(*ontology, &enumerator);
  util::Rng rng(8);
  const std::vector<ConceptId> doc_a =
      rng.SampleWithoutReplacement(ontology->num_concepts(), 10);
  const std::vector<ConceptId> doc_b =
      rng.SampleWithoutReplacement(ontology->num_concepts(), 10);
  const std::vector<ConceptId> query =
      rng.SampleWithoutReplacement(ontology->num_concepts(), 4);

  ASSERT_TRUE(drc.DocQueryDistance(doc_a, query).ok());  // Build a.
  ASSERT_TRUE(drc.DocQueryDistance(doc_b, query).ok());  // Build b.
  ASSERT_TRUE(drc.DocQueryDistance(doc_a, query).ok());  // Hit a.
  ASSERT_TRUE(drc.DocQueryDistance(doc_b, query).ok());  // Hit b.
  // Duplicate concepts dedup to the same cache key.
  std::vector<ConceptId> doc_a_dup = doc_a;
  doc_a_dup.insert(doc_a_dup.end(), doc_a.begin(), doc_a.end());
  ASSERT_TRUE(drc.DocQueryDistance(doc_a_dup, query).ok());  // Hit a.
  EXPECT_EQ(drc.stats().doc_dag_builds, 2u);
  EXPECT_EQ(drc.stats().doc_dag_hits, 3u);
  EXPECT_EQ(drc.stats().skeleton_builds, 0u);

  // An unfrozen enumerator has no pool: the fast path must stand down.
  AddressEnumerator unfrozen(*ontology);
  Drc legacy(*ontology, &unfrozen);
  ASSERT_TRUE(legacy.DocQueryDistance(doc_a, query).ok());
  EXPECT_EQ(legacy.stats().doc_dag_builds, 0u);
  EXPECT_EQ(legacy.stats().skeleton_builds, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    RandomOntologies, DistanceAgreementTest,
    ::testing::Values(AgreementParam{101, 60, 0.0},    // Pure tree.
                      AgreementParam{102, 60, 0.5},    // Dense DAG.
                      AgreementParam{103, 200, 0.2},
                      AgreementParam{104, 200, 0.4},
                      AgreementParam{105, 500, 0.15},
                      AgreementParam{106, 500, 0.35},
                      AgreementParam{107, 1000, 0.25},
                      AgreementParam{108, 50, 0.8},    // Very multi-parent.
                      AgreementParam{109, 2000, 0.1},
                      AgreementParam{110, 2000, 0.3}));

}  // namespace
}  // namespace ecdr::core
