// Proves the tentpole property of the DRC hot path: after warm-up,
// repeated distance computations on one Drc engine perform ZERO heap
// allocations. The replacement operator new defined in this TU (via
// ECDR_ALLOC_COUNTER_DEFINE_NEW) counts every allocation on this
// thread; the steady-state loops must not move the counter.
//
// The guarantee rests on: the FlatDeweyPool serving address spans
// without materializing vectors, the D-Radix arena reusing capacity
// across Reset(), and Drc::Scratch recycling every per-call buffer.

#define ECDR_ALLOC_COUNTER_DEFINE_NEW
#include "util/alloc_counter.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/concept_weights.h"
#include "core/drc.h"
#include "ontology/dewey.h"
#include "ontology/generator.h"
#include "util/status.h"

namespace ecdr::core {
namespace {

using ontology::AddressEnumerator;
using ontology::ConceptId;

struct Fixture {
  ontology::Ontology ontology;
  AddressEnumerator enumerator;
  Drc drc;
  ConceptWeights weights;

  explicit Fixture(ontology::Ontology o)
      : ontology(std::move(o)),
        enumerator(ontology),
        drc(ontology, &enumerator),
        weights(ConceptWeights::Uniform(ontology)) {
    enumerator.PrecomputeAll();
  }
};

Fixture MakeFixture() {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 2'000;
  config.seed = 77;
  auto ontology = GenerateOntology(config);
  ECDR_CHECK(ontology.ok());
  return Fixture(std::move(ontology).value());
}

// Deterministic pseudo-document over the fixture ontology.
std::vector<ConceptId> MakeConcepts(std::uint64_t salt, std::size_t count,
                                    std::uint32_t num_concepts) {
  std::vector<ConceptId> concepts;
  concepts.reserve(count);
  std::uint64_t state = salt * 6364136223846793005ull + 1442695040888963407ull;
  for (std::size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    concepts.push_back(static_cast<ConceptId>((state >> 33) % num_concepts));
  }
  return concepts;
}

TEST(DrcAllocTest, SteadyStateDistanceCallsDoNotAllocate) {
  Fixture fx = MakeFixture();
  ASSERT_NE(fx.enumerator.flat_pool(), nullptr);

  const std::uint32_t n = fx.ontology.num_concepts();
  const std::vector<ConceptId> doc_a = MakeConcepts(1, 24, n);
  const std::vector<ConceptId> doc_b = MakeConcepts(2, 16, n);
  const std::vector<ConceptId> query = MakeConcepts(3, 6, n);
  std::vector<WeightedConcept> weighted;
  for (ConceptId c : query) weighted.push_back({c, 1.5});

  // Warm-up: grows every scratch buffer (and the Ddq/Ddd code paths'
  // high-water marks) to capacity.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fx.drc.DocQueryDistance(doc_a, query).ok());
    ASSERT_TRUE(fx.drc.DocDocDistance(doc_a, doc_b).ok());
    ASSERT_TRUE(fx.drc.DocQueryDistanceWeighted(doc_a, weighted).ok());
    ASSERT_TRUE(fx.drc.DocDocDistanceWeighted(doc_a, doc_b, fx.weights).ok());
  }

  // Steady state: counters must not move. Results are accumulated into
  // plain locals (no gtest macros inside the measured region — their
  // bookkeeping could allocate) and checked afterwards.
  constexpr int kCalls = 50;
  std::uint64_t ddq_sum = 0;
  double ddd_sum = 0.0;
  bool all_ok = true;
  util::AllocationTally tally;
  for (int i = 0; i < kCalls; ++i) {
    auto ddq = fx.drc.DocQueryDistance(doc_a, query);
    auto ddd = fx.drc.DocDocDistance(doc_a, doc_b);
    auto wdq = fx.drc.DocQueryDistanceWeighted(doc_a, weighted);
    auto wdd = fx.drc.DocDocDistanceWeighted(doc_a, doc_b, fx.weights);
    all_ok = all_ok && ddq.ok() && ddd.ok() && wdq.ok() && wdd.ok();
    if (!all_ok) break;
    ddq_sum += *ddq;
    ddd_sum += *ddd + *wdq + *wdd;
  }
  const std::uint64_t allocations = tally.allocations();
  const std::uint64_t bytes = tally.bytes();

  EXPECT_TRUE(all_ok);
  EXPECT_GT(ddq_sum, 0u);
  EXPECT_GT(ddd_sum, 0.0);
  EXPECT_EQ(allocations, 0u) << bytes << " bytes allocated in "
                             << kCalls << " steady-state iterations";
}

// Alternating between differently-sized inputs must also settle: the
// scratch keeps the high-water capacity of the largest input.
TEST(DrcAllocTest, AlternatingInputsSettleToZeroAllocations) {
  Fixture fx = MakeFixture();
  const std::uint32_t n = fx.ontology.num_concepts();
  std::vector<std::vector<ConceptId>> docs;
  for (std::uint64_t i = 0; i < 8; ++i) {
    docs.push_back(MakeConcepts(100 + i, 4 + 6 * i, n));
  }
  const std::vector<ConceptId> query = MakeConcepts(42, 5, n);

  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& doc : docs) {
      ASSERT_TRUE(fx.drc.DocQueryDistance(doc, query).ok());
    }
  }

  std::uint64_t checksum = 0;
  bool all_ok = true;
  util::AllocationTally tally;
  for (int pass = 0; pass < 10; ++pass) {
    for (const auto& doc : docs) {
      auto ddq = fx.drc.DocQueryDistance(doc, query);
      all_ok = all_ok && ddq.ok();
      if (!all_ok) break;
      checksum += *ddq;
    }
  }
  const std::uint64_t allocations = tally.allocations();

  EXPECT_TRUE(all_ok);
  EXPECT_GT(checksum, 0u);
  EXPECT_EQ(allocations, 0u);
}

// The legacy (unfrozen, no pool) path is NOT required to be
// allocation-free — but the counter itself must observe the process
// allocating, proving the instrument works and the zero above is not a
// broken hook.
TEST(DrcAllocTest, CounterObservesAllocations) {
  util::AllocationTally tally;
  std::vector<std::uint64_t>* v = new std::vector<std::uint64_t>(1024);
  const std::uint64_t after_new = tally.allocations();
  delete v;
  const std::uint64_t frees = tally.frees();
  EXPECT_GE(after_new, 2u);  // The vector object + its buffer.
  EXPECT_GE(frees, 2u);
  EXPECT_GE(tally.bytes(), 1024 * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace ecdr::core
