#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace ecdr::util {
namespace {

TEST(StatusTest, OkByDefault) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  StatusOr<int> error = NotFoundError("nope");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicInSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(8);
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 10; ++i) differs |= a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(rng.UniformInt(5, 5), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(4);
  for (const std::uint32_t universe : {10u, 100u, 10000u}) {
    for (const std::uint32_t count : {1u, 5u, 10u}) {
      const auto sample = rng.SampleWithoutReplacement(universe, count);
      EXPECT_EQ(sample.size(), count);
      std::set<std::uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), count);
      for (const auto v : sample) EXPECT_LT(v, universe);
    }
  }
  const auto all = rng.SampleWithoutReplacement(7, 7);
  EXPECT_EQ(std::set<std::uint32_t>(all.begin(), all.end()).size(), 7u);
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat stat;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(x);
  }
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 4.0);  // Classic textbook data set.
  EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStatTest, EmptyIsSafe) {
  const RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(QuantileTest, NearestRank) {
  std::vector<double> values = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(StringUtilTest, Split) {
  const auto pieces = Split("a.b..c", '.');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\r\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, ParseUint32) {
  std::uint32_t v = 0;
  EXPECT_TRUE(ParseUint32("123", &v));
  EXPECT_EQ(v, 123u);
  EXPECT_FALSE(ParseUint32("", &v));
  EXPECT_FALSE(ParseUint32("12x", &v));
  EXPECT_FALSE(ParseUint32("-1", &v));
  EXPECT_FALSE(ParseUint32("99999999999", &v));  // Overflow.
  EXPECT_TRUE(ParseUint32("4294967295", &v));
  EXPECT_EQ(v, 4294967295u);
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvQuoting) {
  TablePrinter table({"a", "b"});
  table.AddRow({"x,y", "he said \"hi\""});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatSeconds(0.5), "500.00 ms");
  EXPECT_EQ(TablePrinter::FormatSeconds(2.0), "2.00 s");
  EXPECT_EQ(TablePrinter::FormatSeconds(5e-6), "5.0 us");
}

TEST(StatusTest, EveryCodeHasAStableUniqueName) {
  // Adding an enum value without a StatusCodeName case would silently
  // log "UNKNOWN" in error output; catch that at the sentinel.
  std::set<std::string> names;
  for (int i = 0; i < static_cast<int>(StatusCode::kNumStatusCodes); ++i) {
    const std::string name = StatusCodeName(static_cast<StatusCode>(i));
    EXPECT_NE(name, "UNKNOWN") << "code " << i << " has no name";
    EXPECT_TRUE(names.insert(name).second)
        << "code " << i << " reuses name '" << name << "'";
  }
  // The sentinel itself is not a real code.
  EXPECT_EQ(StatusCodeName(StatusCode::kNumStatusCodes),
            std::string("UNKNOWN"));
}

TEST(StatusTest, NewErrorHelpersCarryTheirCodes) {
  EXPECT_EQ(CancelledError("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(DeadlineExceededError("d").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ResourceExhaustedError("r").code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ecdr::util
