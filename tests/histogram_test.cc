// util::Histogram bucket-boundary and merge properties, plus the
// serving layer's StatusCode -> HTTP mapping checked exhaustively over
// the enum (the style of the status name-coverage test: adding a code
// without mapping it fails here, not in production).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "serve/http.h"
#include "util/histogram.h"
#include "util/status.h"

namespace ecdr::util {
namespace {

TEST(HistogramTest, BucketBoundariesArePreciseAtEveryEdge) {
  // min 1.0, growth 2: buckets [0,1) [1,2) [2,4) [4,8) [8,inf).
  Histogram histogram(1.0, 2.0, 5);
  ASSERT_EQ(histogram.num_buckets(), 5u);
  EXPECT_EQ(histogram.bucket_lower(0), 0.0);
  EXPECT_EQ(histogram.bucket_upper(0), 1.0);
  EXPECT_EQ(histogram.bucket_lower(3), 4.0);
  EXPECT_EQ(histogram.bucket_upper(3), 8.0);
  EXPECT_EQ(histogram.bucket_upper(4),
            std::numeric_limits<double>::infinity());

  // A value exactly on a bound belongs to the bucket it LOWER-bounds
  // (ranges are half-open [lower, upper)).
  histogram.Record(0.0);
  histogram.Record(0.999);
  histogram.Record(1.0);
  histogram.Record(2.0);
  histogram.Record(3.999);
  histogram.Record(8.0);
  histogram.Record(1e9);
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 1u);
  EXPECT_EQ(histogram.bucket_count(2), 2u);
  EXPECT_EQ(histogram.bucket_count(3), 0u);
  EXPECT_EQ(histogram.bucket_count(4), 2u);
  EXPECT_EQ(histogram.TotalCount(), 7u);
}

TEST(HistogramTest, NothingRecordedIsEverDropped) {
  Histogram histogram(1e-5, 1.6, 36);
  const double values[] = {-1.0,
                           0.0,
                           1e-300,
                           0.5,
                           1e300,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (const double value : values) histogram.Record(value);
  EXPECT_EQ(histogram.TotalCount(), 7u);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i < histogram.num_buckets(); ++i) {
    bucket_sum += histogram.bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, 7u);
}

TEST(HistogramTest, SumAndCountTrackRecords) {
  Histogram histogram;
  double want_sum = 0.0;
  for (int i = 1; i <= 100; ++i) {
    const double value = i * 1e-4;
    histogram.Record(value);
    want_sum += value;
  }
  EXPECT_EQ(histogram.TotalCount(), 100u);
  EXPECT_NEAR(histogram.Sum(), want_sum, 1e-12);
}

TEST(HistogramTest, QuantileIsConservativeWithinOneBucket) {
  Histogram histogram(1e-3, 2.0, 16);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(1e-3 * (i + 1));
  for (const double value : values) histogram.Record(value);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double estimate = histogram.Quantile(q);
    // Never understates; overstates by at most one bucket (growth 2x).
    EXPECT_GE(estimate, exact) << "q=" << q;
    EXPECT_LE(estimate, exact * 2.0 + 1e-3) << "q=" << q;
  }
  // Empty histogram: all quantiles are 0.
  Histogram empty;
  EXPECT_EQ(empty.Quantile(0.99), 0.0);
}

TEST(HistogramTest, MergeEqualsRecordingEverythingInOne) {
  Histogram a(1e-4, 1.5, 24);
  Histogram b(1e-4, 1.5, 24);
  Histogram all(1e-4, 1.5, 24);
  for (int i = 0; i < 500; ++i) {
    const double value = std::pow(1.01, i) * 1e-4;
    ((i % 2 == 0) ? a : b).Record(value);
    all.Record(value);
  }
  EXPECT_TRUE(a.SameShape(b));
  a.MergeFrom(b);
  EXPECT_EQ(a.TotalCount(), all.TotalCount());
  EXPECT_NEAR(a.Sum(), all.Sum(), 1e-9);
  for (std::size_t i = 0; i < all.num_buckets(); ++i) {
    EXPECT_EQ(a.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.Quantile(0.95), all.Quantile(0.95));

  Histogram different(1e-4, 2.0, 24);
  EXPECT_FALSE(a.SameShape(different));
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram histogram;
  histogram.Record(0.5);
  histogram.Record(2.0);
  histogram.Reset();
  EXPECT_EQ(histogram.TotalCount(), 0u);
  EXPECT_EQ(histogram.Sum(), 0.0);
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record((t + 1) * 1e-5 + i * 1e-9);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.TotalCount(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i < histogram.num_buckets(); ++i) {
    bucket_sum += histogram.bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// StatusCode -> HTTP status, exhaustively.

TEST(HttpStatusMappingTest, EveryStatusCodeMapsDeliberately) {
  const struct {
    StatusCode code;
    int want;
  } expected[] = {
      {StatusCode::kOk, 200},
      {StatusCode::kInvalidArgument, 400},
      {StatusCode::kNotFound, 404},
      {StatusCode::kFailedPrecondition, 409},
      {StatusCode::kOutOfRange, 400},
      {StatusCode::kInternal, 500},
      {StatusCode::kIoError, 500},
      {StatusCode::kCancelled, 499},
      {StatusCode::kDeadlineExceeded, 504},
      {StatusCode::kResourceExhausted, 429},
      {StatusCode::kDataLoss, 500},
  };
  // The table above must cover the enum: one row per real code.
  ASSERT_EQ(std::size(expected),
            static_cast<std::size_t>(StatusCode::kNumStatusCodes));
  std::set<StatusCode> seen;
  for (const auto& row : expected) {
    EXPECT_EQ(serve::HttpStatusForCode(row.code), row.want)
        << StatusCodeName(row.code);
    seen.insert(row.code);
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(StatusCode::kNumStatusCodes));

  // Every mapped status is a valid HTTP status with a reason phrase.
  for (int c = 0; c < static_cast<int>(StatusCode::kNumStatusCodes); ++c) {
    const int http = serve::HttpStatusForCode(static_cast<StatusCode>(c));
    EXPECT_GE(http, 200);
    EXPECT_LT(http, 600);
    EXPECT_STRNE(serve::HttpReasonPhrase(http), "Unknown")
        << "HTTP " << http;
  }
}

TEST(HttpStatusMappingTest, ShedAndDeadlineAreRetryableClasses) {
  // The two overload outcomes the serving tier advertises: 429 tells
  // the balancer to back off, 504 says the budget ran out. Neither may
  // drift into the generic 4xx/5xx pools.
  EXPECT_EQ(serve::HttpStatusForCode(StatusCode::kResourceExhausted), 429);
  EXPECT_EQ(serve::HttpStatusForCode(StatusCode::kDeadlineExceeded), 504);
}

}  // namespace
}  // namespace ecdr::util
