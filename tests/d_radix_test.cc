#include "core/d_radix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "core/drc.h"
#include "ontology/dewey.h"
#include "ontology/distance_oracle.h"
#include "ontology/generator.h"
#include "tests/fig3_fixture.h"
#include "util/random.h"

namespace ecdr::core {
namespace {

using ontology::AddressEnumerator;
using ontology::ConceptId;
using ontology::DeweyAddress;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

// Builds the paper's running-example index: d = {F, R, T, V},
// q = {I, L, U} on the Figure 3 ontology (Example 2 / Figure 5).
DRadixDag BuildPaperIndex(const Fig3& fig3) {
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  auto dag = drc.BuildIndex(d, q);
  ECDR_CHECK(dag.ok());
  return std::move(dag).value();
}

TEST(DRadixTest, PaperExample2NodeSet) {
  const Fig3 fig3 = MakeFig3Ontology();
  const DRadixDag dag = BuildPaperIndex(fig3);
  // Figure 5(d): nodes A(root), G, I, J, R, U, V, F, T, H, L — 11 nodes.
  EXPECT_EQ(dag.num_nodes(), 11u);
  for (char name : {'A', 'G', 'I', 'J', 'R', 'U', 'V', 'F', 'T', 'H', 'L'}) {
    EXPECT_NE(dag.FindNode(fig3[name]), DRadixDag::kInvalidNode)
        << "missing node " << name;
  }
  // Merged-away concepts must not appear.
  for (char name : {'B', 'C', 'D', 'E', 'K', 'M', 'N', 'O', 'P', 'Q', 'S'}) {
    EXPECT_EQ(dag.FindNode(fig3[name]), DRadixDag::kInvalidNode)
        << "unexpected node " << name;
  }
  EXPECT_TRUE(dag.CheckInvariants().ok());
}

TEST(DRadixTest, PaperExample2EdgeStructure) {
  const Fig3 fig3 = MakeFig3Ontology();
  const DRadixDag dag = BuildPaperIndex(fig3);
  EXPECT_EQ(dag.num_edges(), 11u);

  // J is the shared (DAG) node: reached from G (edge "2") and from F
  // (edge "1").
  const auto j = dag.FindNode(fig3['J']);
  EXPECT_EQ(dag.node(j).in_degree, 2u);

  const auto expect_edge = [&](char from, char to,
                               const std::string& label) {
    const auto from_index = dag.FindNode(fig3[from]);
    ASSERT_NE(from_index, DRadixDag::kInvalidNode);
    for (const DRadixDag::Edge& edge : dag.node(from_index).children) {
      if (edge.target == dag.FindNode(fig3[to])) {
        EXPECT_EQ(ontology::FormatDewey(edge.label), label)
            << from << " -> " << to;
        return;
      }
    }
    FAIL() << "no edge " << from << " -> " << to;
  };
  // Figure 5(d) edges ("B, E, G and J merged" happens on the A->G edge).
  expect_edge('A', 'G', "1.1.1");
  expect_edge('A', 'F', "3.1");
  expect_edge('G', 'I', "1");
  expect_edge('G', 'J', "2");
  expect_edge('J', 'R', "1.1");
  expect_edge('J', 'V', "2.1.1");
  expect_edge('R', 'U', "1");
  expect_edge('F', 'J', "1");
  expect_edge('F', 'H', "2");
  expect_edge('H', 'T', "1.1.1");
  expect_edge('H', 'L', "2");
}

TEST(DRadixTest, PaperFigure5gDistances) {
  const Fig3 fig3 = MakeFig3Ontology();
  const DRadixDag dag = BuildPaperIndex(fig3);
  // (dist to nearest document concept, dist to nearest query concept)
  // after the bottom-up + top-down tuning sweeps — Figure 5(g).
  const std::vector<std::pair<char, std::pair<std::uint32_t, std::uint32_t>>>
      expected = {
          {'A', {2, 4}}, {'G', {3, 1}}, {'I', {4, 0}}, {'J', {1, 2}},
          {'R', {0, 1}}, {'U', {1, 0}}, {'V', {0, 5}}, {'F', {0, 2}},
          {'T', {0, 4}}, {'H', {1, 1}}, {'L', {2, 0}},
      };
  for (const auto& [name, dists] : expected) {
    const auto index = dag.FindNode(fig3[name]);
    ASSERT_NE(index, DRadixDag::kInvalidNode) << name;
    EXPECT_EQ(dag.node(index).dist_to_doc, dists.first) << "doc dist " << name;
    EXPECT_EQ(dag.node(index).dist_to_query, dists.second)
        << "query dist " << name;
  }
}

TEST(DRadixTest, DocAndQueryFlags) {
  const Fig3 fig3 = MakeFig3Ontology();
  const DRadixDag dag = BuildPaperIndex(fig3);
  for (char name : {'F', 'R', 'T', 'V'}) {
    const auto& node = dag.node(dag.FindNode(fig3[name]));
    EXPECT_TRUE(node.in_doc) << name;
    EXPECT_FALSE(node.in_query) << name;
  }
  for (char name : {'I', 'L', 'U'}) {
    const auto& node = dag.node(dag.FindNode(fig3[name]));
    EXPECT_FALSE(node.in_doc) << name;
    EXPECT_TRUE(node.in_query) << name;
  }
  for (char name : {'A', 'G', 'J', 'H'}) {
    const auto& node = dag.node(dag.FindNode(fig3[name]));
    EXPECT_FALSE(node.in_doc) << name;
    EXPECT_FALSE(node.in_query) << name;
  }
}

TEST(DRadixTest, ConceptOnBothSidesGetsBothFlags) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  Drc drc(fig3.ontology, &enumerator);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R']};
  const std::vector<ConceptId> q = {fig3['R'], fig3['L']};
  const auto dag = drc.BuildIndex(d, q);
  ASSERT_TRUE(dag.ok());
  const auto& r_node = dag->node(dag->FindNode(fig3['R']));
  EXPECT_TRUE(r_node.in_doc);
  EXPECT_TRUE(r_node.in_query);
  EXPECT_EQ(r_node.dist_to_doc, 0u);
  EXPECT_EQ(r_node.dist_to_query, 0u);
}

// Insertion order must not affect tuned distances (the paper inserts in
// lexicographic merge order; the structure is canonical enough that any
// order yields the same distances).
TEST(DRadixTest, InsertionOrderIndependentDistances) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};

  // Reference distances from the sorted build.
  const DRadixDag reference = BuildPaperIndex(fig3);

  std::vector<std::tuple<ConceptId, DeweyAddress, bool, bool>> inserts;
  for (ConceptId c : d) {
    for (const auto& address : enumerator.Addresses(c)) {
      inserts.emplace_back(c, address, true, false);
    }
  }
  for (ConceptId c : q) {
    for (const auto& address : enumerator.Addresses(c)) {
      inserts.emplace_back(c, address, false, true);
    }
  }
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    rng.Shuffle(inserts);
    DRadixDag dag(fig3.ontology);
    for (const auto& [c, address, in_doc, in_query] : inserts) {
      dag.InsertAddress(c, address, in_doc, in_query);
    }
    ASSERT_TRUE(dag.CheckInvariants().ok()) << "trial " << trial;
    dag.TuneDistances();
    for (std::size_t i = 0; i < reference.num_nodes(); ++i) {
      const auto& ref_node = reference.node(
          static_cast<DRadixDag::NodeIndex>(i));
      const auto index = dag.FindNode(ref_node.concept_id);
      ASSERT_NE(index, DRadixDag::kInvalidNode);
      EXPECT_EQ(dag.node(index).dist_to_doc, ref_node.dist_to_doc);
      EXPECT_EQ(dag.node(index).dist_to_query, ref_node.dist_to_query);
    }
  }
}

// Property: on random DAG ontologies, tuned distances at every node
// agree with the brute-force oracle's document-concept distances.
class DRadixOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DRadixOracleTest, TunedDistancesMatchOracle) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 250;
  config.extra_parent_prob = 0.35;
  config.seed = GetParam();
  const auto ontology = ontology::GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  AddressEnumerator enumerator(*ontology);
  Drc drc(*ontology, &enumerator);
  ontology::DistanceOracle oracle(*ontology);
  util::Rng rng(GetParam() * 31 + 5);

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ConceptId> doc = rng.SampleWithoutReplacement(
        ontology->num_concepts(), 8);
    std::vector<ConceptId> query = rng.SampleWithoutReplacement(
        ontology->num_concepts(), 4);
    auto dag = drc.BuildIndex(doc, query);
    ASSERT_TRUE(dag.ok());
    ASSERT_TRUE(dag->CheckInvariants().ok());
    std::vector<std::uint32_t> to_doc;
    std::vector<std::uint32_t> to_query;
    oracle.DistancesFromSet(doc, &to_doc);
    oracle.DistancesFromSet(query, &to_query);
    for (std::size_t i = 0; i < dag->num_nodes(); ++i) {
      const auto& node = dag->node(static_cast<DRadixDag::NodeIndex>(i));
      // Distances inside the D-Radix may only be *attained* at concepts
      // of d/q themselves; interior nodes still must never report less
      // than the true distance, and must be exact at flagged nodes.
      EXPECT_GE(node.dist_to_doc, to_doc[node.concept_id]);
      EXPECT_GE(node.dist_to_query, to_query[node.concept_id]);
      if (node.in_doc || node.in_query) {
        EXPECT_EQ(node.dist_to_doc, to_doc[node.concept_id]);
        EXPECT_EQ(node.dist_to_query, to_query[node.concept_id]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DRadixOracleTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

// ---- Merge / rollback / copy ---------------------------------------

// Everything a caller can observe about a DAG, in a comparable form:
// node set (keyed by concept), flags, in-degrees, and each node's
// children as (label components, target concept), sorted. Edge slot
// numbers and arena offsets are deliberately excluded — rollback
// leaves garbage slots behind, and two builds of the same address set
// may lay the arena out differently; neither is observable.
struct DagSnapshot {
  struct NodeState {
    bool in_doc;
    bool in_query;
    std::uint32_t in_degree;
    std::vector<std::pair<std::vector<std::uint32_t>, ConceptId>> edges;
    bool operator==(const NodeState&) const = default;
  };
  std::map<ConceptId, NodeState> nodes;
  bool operator==(const DagSnapshot&) const = default;
};

DagSnapshot Snapshot(const DRadixDag& dag) {
  DagSnapshot snapshot;
  for (std::size_t i = 0; i < dag.num_nodes(); ++i) {
    const auto node = dag.node(static_cast<DRadixDag::NodeIndex>(i));
    DagSnapshot::NodeState state;
    state.in_doc = node.in_doc;
    state.in_query = node.in_query;
    state.in_degree = node.in_degree;
    for (const DRadixDag::Edge& edge : node.children) {
      state.edges.emplace_back(
          std::vector<std::uint32_t>(edge.label.begin(), edge.label.end()),
          dag.concept_id(edge.target));
    }
    std::sort(state.edges.begin(), state.edges.end());
    snapshot.nodes.emplace(node.concept_id, std::move(state));
  }
  return snapshot;
}

// Merging a document into a query skeleton and rolling it back must
// restore a state observationally identical to the skeleton built from
// scratch — across generated multi-parent ontologies, repeatedly on
// the same DAG, with FindNode agreeing on every concept.
class MergeRollbackTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeRollbackTest, RollbackRestoresSkeletonBitIdentically) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 300;
  config.extra_parent_prob = 0.3;
  config.seed = GetParam();
  const auto ontology = ontology::GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  AddressEnumerator enumerator(*ontology);
  util::Rng rng(GetParam() * 97 + 3);

  const std::vector<ConceptId> query =
      rng.SampleWithoutReplacement(ontology->num_concepts(), 5);
  const auto build_skeleton = [&](DRadixDag* dag) {
    dag->Reset(*ontology);
    for (ConceptId c : query) {
      for (const DeweyAddress& address : enumerator.Addresses(c)) {
        dag->InsertAddress(c, address, /*in_doc=*/false, /*in_query=*/true);
      }
    }
  };

  DRadixDag dag(*ontology);
  build_skeleton(&dag);
  const DagSnapshot skeleton_state = Snapshot(dag);

  DRadixDag reference(*ontology);
  build_skeleton(&reference);
  ASSERT_EQ(skeleton_state, Snapshot(reference))
      << "two from-scratch builds disagree";

  for (int round = 0; round < 5; ++round) {
    // Include the root sometimes: its address is empty, the edge case
    // the empty-address branch of InsertAddress handles.
    std::vector<ConceptId> doc =
        rng.SampleWithoutReplacement(ontology->num_concepts(), 12);
    if (round % 2 == 0) doc.push_back(ontology->root());
    dag.BeginMerge();
    for (ConceptId c : doc) {
      const DRadixDag::NodeIndex existing = dag.FindNode(c);
      if (existing != DRadixDag::kInvalidNode &&
          std::find(query.begin(), query.end(), c) != query.end()) {
        dag.MarkFlags(c, /*in_doc=*/true, /*in_query=*/false);
        continue;
      }
      for (const DeweyAddress& address : enumerator.Addresses(c)) {
        dag.InsertAddress(c, address, /*in_doc=*/true, /*in_query=*/false);
      }
    }
    ASSERT_TRUE(dag.CheckInvariants().ok()) << "round " << round;
    // The merged DAG must equal a from-scratch joint build.
    dag.TuneDistances();
    DRadixDag joint(*ontology);
    build_skeleton(&joint);
    for (ConceptId c : doc) {
      for (const DeweyAddress& address : enumerator.Addresses(c)) {
        joint.InsertAddress(c, address, /*in_doc=*/true, /*in_query=*/false);
      }
    }
    joint.TuneDistances();
    for (std::size_t i = 0; i < joint.num_nodes(); ++i) {
      const auto want = joint.node(static_cast<DRadixDag::NodeIndex>(i));
      const auto index = dag.FindNode(want.concept_id);
      ASSERT_NE(index, DRadixDag::kInvalidNode) << "round " << round;
      EXPECT_EQ(dag.node(index).dist_to_doc, want.dist_to_doc);
      EXPECT_EQ(dag.node(index).dist_to_query, want.dist_to_query);
    }

    dag.RollbackMerge();
    ASSERT_TRUE(dag.CheckInvariants().ok()) << "round " << round;
    EXPECT_EQ(Snapshot(dag), skeleton_state) << "round " << round;
    // FindNode must have forgotten every doc-only node.
    for (ConceptId c = 0; c < ontology->num_concepts(); ++c) {
      EXPECT_EQ(dag.FindNode(c) != DRadixDag::kInvalidNode,
                skeleton_state.nodes.contains(c))
          << "concept " << c << " round " << round;
    }
  }
}

// Randomized merge/detach fuzz: interleave merges, rollbacks, tuning
// and invariant checks on one DAG; every rollback must restore the
// exact pre-merge snapshot (including after merges that split edges of
// earlier merges' survivors — i.e. from varying base states).
TEST_P(MergeRollbackTest, FuzzRandomizedMergeDetach) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 200;
  config.extra_parent_prob = 0.4;
  config.seed = GetParam() * 11 + 1;
  const auto ontology = ontology::GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  AddressEnumerator enumerator(*ontology);
  util::Rng rng(GetParam() * 131 + 17);

  DRadixDag dag(*ontology);
  // Base state: a couple of concepts inserted outside any merge (they
  // survive every rollback).
  for (const ConceptId c :
       rng.SampleWithoutReplacement(ontology->num_concepts(), 3)) {
    for (const DeweyAddress& address : enumerator.Addresses(c)) {
      dag.InsertAddress(c, address, /*in_doc=*/false, /*in_query=*/true);
    }
  }

  for (int round = 0; round < 30; ++round) {
    const DagSnapshot before = Snapshot(dag);
    dag.BeginMerge();
    const std::size_t doc_size = 1 + rng.UniformInt(0, 7);
    for (const ConceptId c : rng.SampleWithoutReplacement(
             ontology->num_concepts(), doc_size)) {
      if (dag.FindNode(c) != DRadixDag::kInvalidNode && rng.UniformInt(0, 1) == 0) {
        dag.MarkFlags(c, /*in_doc=*/true, /*in_query=*/false);
        continue;
      }
      for (const DeweyAddress& address : enumerator.Addresses(c)) {
        dag.InsertAddress(c, address, /*in_doc=*/true, /*in_query=*/false);
      }
    }
    if (rng.UniformInt(0, 1) == 0) dag.TuneDistances();
    ASSERT_TRUE(dag.CheckInvariants().ok()) << "round " << round;
    dag.RollbackMerge();
    ASSERT_TRUE(dag.CheckInvariants().ok()) << "round " << round;
    ASSERT_EQ(Snapshot(dag), before) << "round " << round;
    if (round % 7 == 6) {
      // Occasionally grow the persistent base between merges.
      const ConceptId c = static_cast<ConceptId>(
          rng.UniformInt(0, ontology->num_concepts() - 1));
      for (const DeweyAddress& address : enumerator.Addresses(c)) {
        dag.InsertAddress(c, address, /*in_doc=*/false, /*in_query=*/true);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeRollbackTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38, 39,
                                           40));

// CopyFrom must reproduce the source observationally, and layering more
// insertions on the copy must behave exactly like inserting into a DAG
// that was built jointly from scratch (the doc-DAG cache fast path).
TEST(DRadixTest, CopyFromReproducesSourceAndAcceptsInsertions) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};

  DRadixDag doc_only(fig3.ontology);
  for (ConceptId c : d) {
    for (const DeweyAddress& address : enumerator.Addresses(c)) {
      doc_only.InsertAddress(c, address, /*in_doc=*/true, /*in_query=*/false);
    }
  }

  DRadixDag copy(fig3.ontology);
  // Dirty the destination first: CopyFrom must fully overwrite it.
  for (const DeweyAddress& address : enumerator.Addresses(fig3['L'])) {
    copy.InsertAddress(fig3['L'], address, /*in_doc=*/true,
                       /*in_query=*/false);
  }
  copy.CopyFrom(doc_only);
  ASSERT_TRUE(copy.CheckInvariants().ok());
  EXPECT_EQ(Snapshot(copy), Snapshot(doc_only));

  // Insert the query side on top of the copy; distances must equal the
  // reference joint build (Figure 5(g)).
  for (ConceptId c : q) {
    for (const DeweyAddress& address : enumerator.Addresses(c)) {
      copy.InsertAddress(c, address, /*in_doc=*/false, /*in_query=*/true);
    }
  }
  ASSERT_TRUE(copy.CheckInvariants().ok());
  copy.TuneDistances();
  const DRadixDag reference = BuildPaperIndex(fig3);
  ASSERT_EQ(copy.num_nodes(), reference.num_nodes());
  for (std::size_t i = 0; i < reference.num_nodes(); ++i) {
    const auto want = reference.node(static_cast<DRadixDag::NodeIndex>(i));
    const auto index = copy.FindNode(want.concept_id);
    ASSERT_NE(index, DRadixDag::kInvalidNode);
    EXPECT_EQ(copy.node(index).dist_to_doc, want.dist_to_doc);
    EXPECT_EQ(copy.node(index).dist_to_query, want.dist_to_query);
  }

  // Copying again after the source would have been invalidated must
  // still work: the copy holds its own arena and concept table.
  DRadixDag second(fig3.ontology);
  second.CopyFrom(doc_only);
  doc_only.Reset(fig3.ontology);
  ASSERT_TRUE(second.CheckInvariants().ok());
  for (ConceptId c : d) {
    EXPECT_NE(second.FindNode(c), DRadixDag::kInvalidNode);
  }
}

}  // namespace
}  // namespace ecdr::core
