// Compressed block-max postings: codec round-trips, corrupt-input
// hardening, structural agreement with the dense PrecomputedPostings
// referee, serial-vs-parallel build determinism, the 20-seed
// differential (block-max TA bit-identical to dense TA and to the
// exhaustive ranker across memo on/off x 1/8 threads x block sizes),
// whole-block skipping, and steady-state allocation discipline.

#define ECDR_ALLOC_COUNTER_DEFINE_NEW
#include "util/alloc_counter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/distance_cache.h"
#include "core/drc.h"
#include "core/exhaustive_ranker.h"
#include "core/ta_ranker.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "index/block_postings.h"
#include "index/precomputed_postings.h"
#include "ontology/generator.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ecdr::index {
namespace {

using blockcodec::DecodeBlock;
using blockcodec::EncodeBlock;
using blockcodec::UnpackResidual;
using Entry = BlockPostingEntry;

// ---------------------------------------------------------------------------
// Codec round-trips

std::vector<Entry> RandomEntries(util::Rng* rng, std::size_t count,
                                 std::uint64_t max_gap,
                                 std::uint32_t max_distance, bool dense_run) {
  std::vector<Entry> entries(count);
  std::uint64_t doc = rng->UniformInt(0, 1000);
  for (std::size_t i = 0; i < count; ++i) {
    entries[i].doc = static_cast<corpus::DocId>(doc);
    entries[i].distance =
        static_cast<std::uint32_t>(rng->UniformInt(0, max_distance));
    doc += dense_run ? 1 : 1 + rng->UniformInt(0, max_gap);
  }
  return entries;
}

void ExpectRoundTrip(const std::vector<Entry>& entries, const char* label) {
  std::vector<std::uint8_t> arena;
  BlockMeta meta;
  EncodeBlock(entries, &arena, &meta);
  EXPECT_EQ(meta.count, entries.size()) << label;
  EXPECT_EQ(meta.first_doc, entries.front().doc) << label;
  EXPECT_EQ(meta.max_doc, entries.back().doc) << label;
  std::uint32_t min_distance = entries.front().distance;
  for (const Entry& e : entries) {
    min_distance = std::min(min_distance, e.distance);
  }
  EXPECT_EQ(meta.min_distance, min_distance) << label;

  std::vector<Entry> decoded;
  ASSERT_TRUE(DecodeBlock(arena, meta, &decoded)) << label;
  ASSERT_EQ(decoded.size(), entries.size()) << label;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i], entries[i]) << label << " entry " << i;
  }
}

TEST(BlockCodecTest, RoundTripsSeededRandomPostings) {
  util::Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = 1 + rng.UniformInt(0, 200);
    const std::uint64_t max_gap = 1ull << rng.UniformInt(0, 20);
    const std::uint32_t max_distance =
        static_cast<std::uint32_t>((1ull << rng.UniformInt(0, 32)) - 1);
    const bool dense = rng.Bernoulli(0.3);
    ExpectRoundTrip(RandomEntries(&rng, count, max_gap, max_distance, dense),
                    "random");
  }
}

TEST(BlockCodecTest, RoundTripsEdgeShapes) {
  // Single entry (always a dense run).
  ExpectRoundTrip({{7, 42}}, "single");
  // Width 0: every distance equal (dense and sparse).
  ExpectRoundTrip({{0, 5}, {1, 5}, {2, 5}, {3, 5}}, "width0 dense");
  ExpectRoundTrip({{0, 5}, {10, 5}, {1000, 5}}, "width0 sparse");
  // Distance ties in a mixed block.
  ExpectRoundTrip({{0, 9}, {1, 3}, {2, 9}, {3, 3}, {4, 9}}, "ties");
  // Max residual width: finite + kInfiniteDistance in one block, the
  // tombstone shape.
  ExpectRoundTrip({{0, 0}, {1, ontology::kInfiniteDistance}}, "inf");
  ExpectRoundTrip({{4, ontology::kInfiniteDistance},
                   {5, ontology::kInfiniteDistance}},
                  "all-inf");
  // Maximal doc gap: first and (almost) last representable ids.
  ExpectRoundTrip({{0, 1}, {corpus::kInvalidDoc - 1, 2}}, "max-gap");
}

TEST(BlockCodecTest, DenseRunPayloadHasNoDocBytesAndUnpacksInPlace) {
  util::Rng rng(7);
  const std::vector<Entry> entries = RandomEntries(
      &rng, 97, /*max_gap=*/0, /*max_distance=*/300, /*dense_run=*/true);
  std::vector<std::uint8_t> arena;
  BlockMeta meta;
  EncodeBlock(entries, &arena, &meta);
  ASSERT_TRUE(meta.dense_run());
  const std::uint32_t width = arena[1];
  // flags + width + packed residuals, nothing else.
  EXPECT_EQ(arena.size(), 2 + (entries.size() * width + 7) / 8);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(meta.min_distance +
                  UnpackResidual(arena, width, static_cast<std::uint32_t>(i)),
              entries[i].distance)
        << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Corrupt-input sweep: every truncation and every bit flip of a valid
// payload must either be rejected or decode into a well-formed block —
// never crash, never produce malformed output.

void ExpectDecodeIsTotal(const std::vector<std::uint8_t>& payload,
                         const BlockMeta& meta, const std::string& label) {
  std::vector<Entry> decoded;
  if (!DecodeBlock(payload, meta, &decoded)) return;
  ASSERT_EQ(decoded.size(), meta.count) << label;
  for (std::size_t i = 1; i < decoded.size(); ++i) {
    ASSERT_LT(decoded[i - 1].doc, decoded[i].doc) << label;
  }
}

TEST(BlockCodecCorruptionTest, TruncationsAndBitFlipsNeverCrash) {
  util::Rng rng(99);
  struct Shape {
    const char* name;
    std::vector<Entry> entries;
  };
  const Shape shapes[] = {
      {"dense", RandomEntries(&rng, 64, 0, 1000, true)},
      {"sparse", RandomEntries(&rng, 48, 5000, 1 << 20, false)},
      {"single", {{3, 1}}},
      {"inf", {{0, 0}, {1, ontology::kInfiniteDistance}, {9, 7}}},
  };
  for (const Shape& shape : shapes) {
    std::vector<std::uint8_t> payload;
    BlockMeta meta;
    EncodeBlock(shape.entries, &payload, &meta);
    // Every strict prefix.
    for (std::size_t len = 0; len < payload.size(); ++len) {
      ExpectDecodeIsTotal(
          {payload.begin(), payload.begin() + len}, meta,
          std::string(shape.name) + " truncated to " + std::to_string(len));
    }
    // Trailing junk.
    std::vector<std::uint8_t> extended = payload;
    extended.push_back(0x00);
    std::vector<Entry> decoded;
    EXPECT_FALSE(DecodeBlock(extended, meta, &decoded)) << shape.name;
    // Every single-bit flip.
    for (std::size_t byte = 0; byte < payload.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> flipped = payload;
        flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
        ExpectDecodeIsTotal(flipped, meta,
                            std::string(shape.name) + " flip " +
                                std::to_string(byte) + ":" +
                                std::to_string(bit));
      }
    }
    // Metadata corruption: impossible counts and inverted doc ranges.
    BlockMeta bad = meta;
    bad.count = 0;
    EXPECT_FALSE(DecodeBlock(payload, bad, &decoded)) << shape.name;
    bad = meta;
    bad.count = 1u << 20;  // over the codec's block-count bound
    EXPECT_FALSE(DecodeBlock(payload, bad, &decoded)) << shape.name;
    bad = meta;
    bad.first_doc = meta.max_doc + 1;
    EXPECT_FALSE(DecodeBlock(payload, bad, &decoded)) << shape.name;
  }
}

// ---------------------------------------------------------------------------
// Structure vs the dense referee, and build determinism

ontology::Ontology MakeOntology(std::uint64_t seed) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 600 + (seed % 4) * 200;
  config.extra_parent_prob = 0.15 * (seed % 3);
  config.seed = seed;
  auto ontology = ontology::GenerateOntology(config);
  EXPECT_TRUE(ontology.ok());
  return std::move(ontology).value();
}

corpus::Corpus MakeCorpus(const ontology::Ontology& ontology,
                          std::uint64_t seed) {
  corpus::CorpusGeneratorConfig config;
  config.num_documents = 60 + (seed % 5) * 10;
  config.avg_concepts_per_doc = 10 + (seed % 3) * 5;
  config.seed = seed * 7919 + 1;
  auto corpus = corpus::GenerateCorpus(ontology, config);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

TEST(BlockPostingsTest, AgreesWithDenseTableEverywhere) {
  const ontology::Ontology ontology = MakeOntology(3);
  const corpus::Corpus corpus = MakeCorpus(ontology, 3);
  const PrecomputedPostings dense(corpus);
  BlockPostingsOptions options;
  options.block_size = 16;
  const BlockPostings block(corpus, options);

  ASSERT_EQ(block.num_documents(), corpus.num_documents());
  ASSERT_EQ(block.num_concepts(), ontology.num_concepts());
  BlockPostings::Reader reader;
  std::vector<Entry> surfaced;
  for (ontology::ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    // Random access agrees per (concept, doc).
    reader.Reset(&block, c);
    for (corpus::DocId d = 0; d < corpus.num_documents(); ++d) {
      ASSERT_EQ(reader.Seek(d), dense.Distance(c, d)) << "c=" << c
                                                      << " d=" << d;
    }
    // The sorted walk surfaces every doc exactly once, in
    // non-decreasing block-min order, with exact distances.
    BlockPostings::Cursor cursor;
    cursor.Reset(&block, c);
    std::uint32_t last_min = 0;
    std::span<const Entry> entries;
    surfaced.clear();
    while (true) {
      const std::uint32_t frontier = cursor.frontier_min_distance();
      if (!cursor.NextBlock(&entries)) break;
      ASSERT_GE(frontier, last_min);
      last_min = frontier;
      surfaced.insert(surfaced.end(), entries.begin(), entries.end());
    }
    ASSERT_EQ(cursor.frontier_min_distance(), ontology::kInfiniteDistance);
    ASSERT_EQ(surfaced.size(), corpus.num_documents());
    std::sort(surfaced.begin(), surfaced.end(),
              [](const Entry& a, const Entry& b) { return a.doc < b.doc; });
    for (corpus::DocId d = 0; d < corpus.num_documents(); ++d) {
      ASSERT_EQ(surfaced[d].doc, d);
      ASSERT_EQ(surfaced[d].distance, dense.Distance(c, d));
    }
  }
  // The compression headline at corpus scale, for the bench to refine.
  EXPECT_LT(block.memory_bytes(), dense.memory_bytes());
}

TEST(BlockPostingsTest, ParallelBuildIsByteIdenticalToSerial) {
  const ontology::Ontology ontology = MakeOntology(5);
  const corpus::Corpus corpus = MakeCorpus(ontology, 5);
  util::ThreadPool pool(7);

  BlockPostingsOptions serial_options;
  serial_options.block_size = 32;
  const BlockPostings serial(corpus, serial_options);
  BlockPostingsOptions parallel_options = serial_options;
  parallel_options.pool = &pool;
  const BlockPostings parallel(corpus, parallel_options);

  ASSERT_EQ(serial.arena().size(), parallel.arena().size());
  EXPECT_TRUE(std::equal(serial.arena().begin(), serial.arena().end(),
                         parallel.arena().begin()));
  ASSERT_EQ(serial.num_blocks(), parallel.num_blocks());
  for (ontology::ConceptId c = 0; c < serial.num_concepts(); ++c) {
    const auto a = serial.blocks(c);
    const auto b = parallel.blocks(c);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].offset, b[i].offset);
      EXPECT_EQ(a[i].length, b[i].length);
      EXPECT_EQ(a[i].first_doc, b[i].first_doc);
      EXPECT_EQ(a[i].max_doc, b[i].max_doc);
      EXPECT_EQ(a[i].min_distance, b[i].min_distance);
      EXPECT_EQ(a[i].count, b[i].count);
    }
    const auto oa = serial.distance_order(c);
    const auto ob = parallel.distance_order(c);
    ASSERT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin(), ob.end()));
  }
}

TEST(PrecomputedPostingsTest, ParallelBuildIsByteIdenticalToSerial) {
  const ontology::Ontology ontology = MakeOntology(6);
  const corpus::Corpus corpus = MakeCorpus(ontology, 6);
  util::ThreadPool pool(7);
  const PrecomputedPostings serial(corpus);
  const PrecomputedPostings parallel(corpus, &pool);

  ASSERT_EQ(serial.memory_bytes(), parallel.memory_bytes());
  EXPECT_GT(serial.by_distance_bytes(), 0u);
  EXPECT_GT(serial.by_doc_bytes(), 0u);
  for (ontology::ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    const auto a = serial.SortedPostings(c);
    const auto b = parallel.SortedPostings(c);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].doc, b[i].doc) << "c=" << c << " i=" << i;
      ASSERT_EQ(a[i].distance, b[i].distance) << "c=" << c << " i=" << i;
    }
    for (corpus::DocId d = 0; d < corpus.num_documents(); ++d) {
      ASSERT_EQ(serial.Distance(c, d), parallel.Distance(c, d));
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: block-max TA vs dense TA vs the exhaustive ranker

void ExpectBitIdentical(const std::vector<core::ScoredDocument>& want,
                        const std::vector<core::ScoredDocument>& got,
                        const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id) << label << " rank " << i;
    EXPECT_EQ(want[i].distance, got[i].distance) << label << " rank " << i;
  }
}

class BlockTaDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockTaDifferentialTest, BitIdenticalToDenseTaAndExhaustive) {
  const std::uint64_t seed = GetParam();
  const ontology::Ontology ontology = MakeOntology(seed);
  const corpus::Corpus corpus = MakeCorpus(ontology, seed);
  const PrecomputedPostings dense(corpus);
  BlockPostingsOptions block_options;
  block_options.block_size = 8 + (seed % 3) * 8;  // 8, 16 or 24
  const BlockPostings block(corpus, block_options);

  ontology::AddressEnumerator enumerator(ontology);
  core::Drc drc(ontology, &enumerator);
  core::ExhaustiveRanker exhaustive(corpus, &drc);

  const std::uint32_t k = 1 + (seed % 3) * 4;  // 1, 5 or 9.
  const auto queries =
      corpus::GenerateRdsQueries(corpus, 3, 3 + seed % 3, seed * 13 + 7);

  for (const bool memo_on : {false, true}) {
    core::DdqMemo memo;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      core::TaRankerOptions options;
      options.num_threads = threads;
      options.ddq_memo = memo_on ? &memo : nullptr;
      core::TaRanker dense_ta(corpus, dense, options);
      core::TaRanker block_ta(corpus, block, options);
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        const std::string label = "seed " + std::to_string(seed) + " q" +
                                  std::to_string(qi) + " memo " +
                                  std::to_string(memo_on) + " threads " +
                                  std::to_string(threads);
        const auto want = exhaustive.TopKRelevant(queries[qi], k);
        ASSERT_TRUE(want.ok()) << label;
        // Cold and warm (memo-hit) passes of both backends.
        for (int pass = 0; pass < 2; ++pass) {
          const auto dense_got = dense_ta.TopKRelevant(queries[qi], k);
          ASSERT_TRUE(dense_got.ok()) << label;
          ExpectBitIdentical(*want, *dense_got, label + " dense");
          const auto block_got = block_ta.TopKRelevant(queries[qi], k);
          ASSERT_TRUE(block_got.ok()) << label;
          ExpectBitIdentical(*want, *block_got, label + " block");
          EXPECT_GT(block_ta.last_stats().bytes_per_doc, 0.0) << label;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, BlockTaDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Skipping and allocation discipline

TEST(BlockTaTest, SkipsWholeBlocksAtSmallK) {
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 300;
  ontology_config.seed = 55;
  const auto ontology = ontology::GenerateOntology(ontology_config);
  ASSERT_TRUE(ontology.ok());
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 400;
  corpus_config.avg_concepts_per_doc = 8;
  corpus_config.min_concept_depth = 1;
  corpus_config.seed = 56;
  const auto corpus = corpus::GenerateCorpus(*ontology, corpus_config);
  ASSERT_TRUE(corpus.ok());
  BlockPostingsOptions options;
  options.block_size = 16;
  const BlockPostings block(*corpus, options);
  core::TaRankerOptions ta_options;
  ta_options.num_threads = 1;
  core::TaRanker ta(*corpus, block, ta_options);

  const auto queries = corpus::GenerateRdsQueries(*corpus, 5, 3, 57);
  std::uint64_t skipped = 0;
  for (const auto& query : queries) {
    const auto results = ta.TopKRelevant(query, 3);
    ASSERT_TRUE(results.ok());
    EXPECT_EQ(results->size(), 3u);
    skipped += ta.last_stats().skipped_blocks;
    EXPECT_GT(ta.last_stats().decoded_blocks, 0u);
  }
  // k=3 of 400 docs: the threshold must retire blocks un-decoded.
  EXPECT_GT(skipped, 0u);
}

TEST(BlockTaTest, SteadyStateQueriesStayOffTheAllocator) {
  const ontology::Ontology ontology = MakeOntology(9);
  const corpus::Corpus corpus = MakeCorpus(ontology, 9);
  BlockPostingsOptions options;
  options.block_size = 16;
  const BlockPostings block(corpus, options);
  core::TaRankerOptions ta_options;
  ta_options.num_threads = 1;  // the serial hot path is the contract
  core::TaRanker ta(corpus, block, ta_options);
  const auto queries = corpus::GenerateRdsQueries(corpus, 4, 4, 101);

  // Warm-up grows every scratch buffer to capacity.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& query : queries) {
      ASSERT_TRUE(ta.TopKRelevant(query, 5).ok());
    }
  }
  for (const auto& query : queries) {
    util::AllocationTally tally;
    const auto results = ta.TopKRelevant(query, 5);
    ASSERT_TRUE(results.ok());
    // The returned top-k vector is the only permitted allocation
    // (+ its StatusOr plumbing); cursors, bitmap, heap and decode
    // scratch all reuse capacity.
    EXPECT_LE(tally.allocations(), 2u);
  }
}

}  // namespace
}  // namespace ecdr::index
