// Adversarial-shape stress tests. Random DAGs from the generator are
// "benign"; these hand-built pathologies target the algorithms' weak
// spots: deep chains (radix compression of long labels), wide stars
// (fanout and Dewey ordinal width), stacked diamonds (exponential-ish
// address multiplication and shared-node reuse in the D-Radix), and
// layered complete bipartite graphs (maximal multi-parent density).
// Every shape cross-validates DRC against the oracle and kNDS against
// the exhaustive ranker.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/drc.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "ontology/dewey.h"
#include "ontology/distance_oracle.h"
#include "ontology/ontology_builder.h"
#include "util/random.h"

namespace ecdr::core {
namespace {

using corpus::Corpus;
using corpus::Document;
using ontology::AddressEnumerator;
using ontology::ConceptId;
using ontology::Ontology;
using ontology::OntologyBuilder;

/// A chain root -> c1 -> ... -> c_depth.
Ontology MakeChain(std::uint32_t depth) {
  OntologyBuilder builder;
  ConceptId previous = builder.AddConcept("n0");
  for (std::uint32_t i = 1; i <= depth; ++i) {
    const ConceptId current = builder.AddConcept("n" + std::to_string(i));
    ECDR_CHECK(builder.AddEdge(previous, current).ok());
    previous = current;
  }
  auto built = std::move(builder).Build();
  ECDR_CHECK(built.ok());
  return std::move(built).value();
}

/// A root with `width` leaf children.
Ontology MakeStar(std::uint32_t width) {
  OntologyBuilder builder;
  const ConceptId root = builder.AddConcept("root");
  for (std::uint32_t i = 0; i < width; ++i) {
    const ConceptId leaf = builder.AddConcept("leaf" + std::to_string(i));
    ECDR_CHECK(builder.AddEdge(root, leaf).ok());
  }
  auto built = std::move(builder).Build();
  ECDR_CHECK(built.ok());
  return std::move(built).value();
}

/// `stacks` diamonds in sequence: each level is {top -> left,right ->
/// bottom}; the bottom concept has 2^stacks Dewey addresses.
Ontology MakeDiamondStack(std::uint32_t stacks) {
  OntologyBuilder builder;
  ConceptId top = builder.AddConcept("top0");
  for (std::uint32_t i = 0; i < stacks; ++i) {
    const std::string suffix = std::to_string(i);
    const ConceptId left = builder.AddConcept("left" + suffix);
    const ConceptId right = builder.AddConcept("right" + suffix);
    const ConceptId bottom = builder.AddConcept("top" + std::to_string(i + 1));
    ECDR_CHECK(builder.AddEdge(top, left).ok());
    ECDR_CHECK(builder.AddEdge(top, right).ok());
    ECDR_CHECK(builder.AddEdge(left, bottom).ok());
    ECDR_CHECK(builder.AddEdge(right, bottom).ok());
    top = bottom;
  }
  auto built = std::move(builder).Build();
  ECDR_CHECK(built.ok());
  return std::move(built).value();
}

/// `layers` layers of `width` nodes each, every node connected to every
/// node of the next layer (max multi-parent density).
Ontology MakeBipartiteLayers(std::uint32_t layers, std::uint32_t width) {
  OntologyBuilder builder;
  const ConceptId root = builder.AddConcept("root");
  std::vector<ConceptId> previous = {root};
  for (std::uint32_t layer = 0; layer < layers; ++layer) {
    std::vector<ConceptId> current;
    for (std::uint32_t i = 0; i < width; ++i) {
      current.push_back(builder.AddConcept(
          "l" + std::to_string(layer) + "n" + std::to_string(i)));
      for (const ConceptId parent : previous) {
        ECDR_CHECK(builder.AddEdge(parent, current.back()).ok());
      }
    }
    previous = std::move(current);
  }
  auto built = std::move(builder).Build();
  ECDR_CHECK(built.ok());
  return std::move(built).value();
}

void CheckDrcAgainstOracle(const Ontology& ontology, std::uint64_t seed,
                           std::uint32_t trials, std::uint32_t set_size) {
  AddressEnumerator enumerator(ontology);
  Drc drc(ontology, &enumerator);
  ontology::DistanceOracle oracle(ontology);
  util::Rng rng(seed);
  const std::uint32_t n = ontology.num_concepts();
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto size = std::min(set_size, n);
    const std::vector<ConceptId> doc =
        rng.SampleWithoutReplacement(n, size);
    const std::vector<ConceptId> query =
        rng.SampleWithoutReplacement(n, std::min(4u, n));
    const auto dag = drc.BuildIndex(doc, query);
    ASSERT_TRUE(dag.ok());
    ASSERT_TRUE(dag->CheckInvariants().ok());
    EXPECT_EQ(*drc.DocQueryDistance(doc, query),
              oracle.DocQueryDistance(doc, query));
    EXPECT_DOUBLE_EQ(*drc.DocDocDistance(doc, query),
                     oracle.DocDocDistance(doc, query));
  }
}

TEST(StressTest, DeepChain) {
  const Ontology chain = MakeChain(300);
  CheckDrcAgainstOracle(chain, 1, 5, 10);
  // On a chain the distance is just the index gap.
  AddressEnumerator enumerator(chain);
  Drc drc(chain, &enumerator);
  const std::vector<ConceptId> doc = {10};
  const std::vector<ConceptId> query = {250};
  EXPECT_EQ(*drc.DocQueryDistance(doc, query), 240u);
}

TEST(StressTest, WideStar) {
  const Ontology star = MakeStar(2000);
  CheckDrcAgainstOracle(star, 2, 5, 50);
  // Any two leaves are at distance 2 through the root.
  AddressEnumerator enumerator(star);
  Drc drc(star, &enumerator);
  const std::vector<ConceptId> doc = {1};
  const std::vector<ConceptId> query = {1999};
  EXPECT_EQ(*drc.DocQueryDistance(doc, query), 2u);
}

TEST(StressTest, DiamondStackAddressExplosionIsCapped) {
  // 16 stacked diamonds: the bottom has 2^16 = 65,536 root paths; the
  // enumerator must cap without crashing and distances stay exact (all
  // addresses are symmetric, so truncation loses nothing here).
  const Ontology diamonds = MakeDiamondStack(16);
  ontology::AddressEnumeratorOptions options;
  options.max_addresses = 128;
  AddressEnumerator enumerator(diamonds, options);
  const ConceptId bottom = diamonds.FindByName("top16");
  ASSERT_NE(bottom, ontology::kInvalidConcept);
  EXPECT_EQ(diamonds.path_count(bottom), 1u << 16);
  EXPECT_EQ(enumerator.Addresses(bottom).size(), 128u);
  EXPECT_TRUE(enumerator.truncated(bottom));

  Drc drc(diamonds, &enumerator);
  ontology::DistanceOracle oracle(diamonds);
  const std::vector<ConceptId> doc = {diamonds.FindByName("left3")};
  const std::vector<ConceptId> query = {diamonds.FindByName("right12")};
  EXPECT_EQ(*drc.DocQueryDistance(doc, query),
            oracle.DocQueryDistance(doc, query));
}

TEST(StressTest, DiamondStackExactWithoutTruncation) {
  const Ontology diamonds = MakeDiamondStack(8);  // 256 addresses, no cap.
  CheckDrcAgainstOracle(diamonds, 3, 8, 6);
}

TEST(StressTest, BipartiteLayers) {
  const Ontology bipartite = MakeBipartiteLayers(4, 5);
  CheckDrcAgainstOracle(bipartite, 4, 8, 8);
}

TEST(StressTest, KndsOnPathologicalShapes) {
  for (int shape = 0; shape < 3; ++shape) {
    const Ontology ontology = shape == 0   ? MakeChain(120)
                              : shape == 1 ? MakeDiamondStack(8)
                                           : MakeBipartiteLayers(3, 6);
    Corpus corpus(ontology);
    util::Rng rng(50 + shape);
    for (int d = 0; d < 30; ++d) {
      std::vector<ConceptId> concepts = rng.SampleWithoutReplacement(
          ontology.num_concepts(),
          std::min<std::uint32_t>(5, ontology.num_concepts()));
      ECDR_CHECK(corpus.AddDocument(Document(std::move(concepts))).ok());
    }
    index::InvertedIndex index(corpus);
    AddressEnumerator enumerator(ontology);
    Drc drc(ontology, &enumerator);
    ExhaustiveRanker exhaustive(corpus, &drc);
    for (const double eps : {0.0, 1.0}) {
      KndsOptions options;
      options.error_threshold = eps;
      Knds knds(corpus, index, &drc, options);
      const std::vector<ConceptId> query =
          rng.SampleWithoutReplacement(ontology.num_concepts(), 3);
      const auto got = knds.SearchRds(query, 5);
      ASSERT_TRUE(got.ok());
      const auto want = exhaustive.TopKRelevant(query, 5);
      ASSERT_TRUE(want.ok());
      ASSERT_EQ(got->size(), want->size());
      for (std::size_t i = 0; i < got->size(); ++i) {
        EXPECT_DOUBLE_EQ((*got)[i].distance, (*want)[i].distance)
            << "shape=" << shape << " eps=" << eps;
      }
    }
  }
}

TEST(StressTest, SingleConceptWorld) {
  OntologyBuilder builder;
  const ConceptId only = builder.AddConcept("only");
  auto ontology = std::move(builder).Build();
  ASSERT_TRUE(ontology.ok());
  Corpus corpus(*ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({only})).ok());
  index::InvertedIndex index(corpus);
  AddressEnumerator enumerator(*ontology);
  Drc drc(*ontology, &enumerator);
  Knds knds(corpus, index, &drc);
  const std::vector<ConceptId> query = {only};
  const auto results = knds.SearchRds(query, 3);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_DOUBLE_EQ((*results)[0].distance, 0.0);
}

}  // namespace
}  // namespace ecdr::core
