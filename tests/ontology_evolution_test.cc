// Ontology evolution differential (DESIGN.md, "Ontology versioning &
// evolution"): incremental EvolveSnapshot vs cold-rebuild bit-identity
// over 20 seeded random mutation scripts, crossed with the engine's
// {1,8}-thread and memo-on/off axes; no-op (retire-only) and
// single-leaf-add controls proving the re-enumeration is genuinely
// partial; BuildEvolved postings byte-identity; and durable-engine
// round-trips of the mutation WAL / ONTO image sections.
//
// The bar everywhere is bit-identity, not tolerance: an evolved engine
// must return byte-for-byte what a cold engine built from the
// post-mutation ontology returns, and the incremental FlatDeweyPool
// must equal a cold enumeration span for span, rank for rank.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/ranking_engine.h"
#include "corpus/corpus.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "index/block_postings.h"
#include "ontology/distance_oracle.h"
#include "ontology/generator.h"
#include "ontology/ontology.h"
#include "ontology/ontology_snapshot.h"
#include "storage/env.h"
#include "storage/store.h"

namespace ecdr {
namespace {

using ontology::ConceptId;
using ontology::EvolutionStats;
using ontology::OntologyMutation;
using ontology::OntologySnapshot;

ontology::Ontology MakeOntology(std::uint64_t seed,
                                std::uint32_t num_concepts = 200) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = num_concepts;
  config.extra_parent_prob = 0.2;
  config.seed = seed;
  auto result = ontology::GenerateOntology(config);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

corpus::Corpus MakeCorpus(const ontology::Ontology& ontology,
                          std::uint64_t seed,
                          std::uint32_t num_documents = 100) {
  corpus::CorpusGeneratorConfig config;
  config.num_documents = num_documents;
  config.avg_concepts_per_doc = 12.0;
  config.seed = seed;
  auto result = corpus::GenerateCorpus(ontology, config);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

bool HasEdge(const ontology::Ontology& dag, ConceptId parent,
             ConceptId child) {
  const auto children = dag.children(parent);
  return std::find(children.begin(), children.end(), child) != children.end();
}

/// One random mutation batch against the current DAG state. `retired`
/// mirrors the lineage's retirement flags and is updated as mutations
/// are generated, so later picks never reference a retired concept
/// (EvolveSnapshot would reject the batch). add_edge always picks
/// parent id < child id: every generated-DAG edge already ascends in
/// id, so descendants have strictly larger ids and no cycle can form.
std::vector<OntologyMutation> MakeBatch(std::mt19937_64& rng,
                                        const ontology::Ontology& dag,
                                        std::vector<std::uint8_t>* retired,
                                        const std::string& name_prefix) {
  retired->resize(dag.num_concepts(), 0);
  const auto alive = [&](ConceptId c) { return (*retired)[c] == 0; };
  const auto pick_alive = [&](ConceptId min_id) -> ConceptId {
    std::uniform_int_distribution<ConceptId> dist(min_id,
                                                  dag.num_concepts() - 1);
    for (int tries = 0; tries < 64; ++tries) {
      const ConceptId c = dist(rng);
      if (alive(c)) return c;
    }
    return ontology::kInvalidConcept;
  };

  std::uniform_int_distribution<int> size_dist(3, 8);
  std::uniform_int_distribution<int> kind_dist(0, 9);
  const int batch_size = size_dist(rng);
  std::vector<OntologyMutation> batch;
  std::set<std::pair<ConceptId, ConceptId>> batch_edges;
  int added = 0;
  while (static_cast<int>(batch.size()) < batch_size) {
    const int roll = kind_dist(rng);
    OntologyMutation m;
    if (roll < 5) {
      // add_concept with 1-3 distinct live parents among existing ids.
      m.kind = OntologyMutation::Kind::kAddConcept;
      m.name = name_prefix + "_" + std::to_string(added++);
      std::uniform_int_distribution<int> parent_count(1, 3);
      const int want = parent_count(rng);
      std::set<ConceptId> parents;
      while (static_cast<int>(parents.size()) < want) {
        const ConceptId p = pick_alive(0);
        if (p == ontology::kInvalidConcept) break;
        parents.insert(p);
      }
      if (parents.empty()) continue;
      m.parents.assign(parents.begin(), parents.end());
    } else if (roll < 8) {
      // add_edge between two pre-batch concepts, low id -> high id.
      const ConceptId child = pick_alive(1);
      if (child == ontology::kInvalidConcept || child == dag.root()) continue;
      std::uniform_int_distribution<ConceptId> parent_dist(0, child - 1);
      const ConceptId parent = parent_dist(rng);
      if (!alive(parent) || HasEdge(dag, parent, child) ||
          !batch_edges.insert({parent, child}).second) {
        continue;
      }
      m.kind = OntologyMutation::Kind::kAddEdge;
      m.parent = parent;
      m.child = child;
    } else {
      // retire a live non-root concept; mark the mirror immediately so
      // nothing later in this batch references it.
      const ConceptId target = pick_alive(1);
      if (target == ontology::kInvalidConcept) continue;
      m.kind = OntologyMutation::Kind::kRetireConcept;
      m.target = target;
      (*retired)[target] = 1;
    }
    batch.push_back(std::move(m));
  }
  return batch;
}

void ExpectSamePool(const ontology::FlatDeweyPool* a,
                    const ontology::FlatDeweyPool* b) {
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->num_concepts(), b->num_concepts());
  ASSERT_EQ(a->num_addresses(), b->num_addresses());
  ASSERT_EQ(a->num_components(), b->num_components());
  EXPECT_TRUE(std::equal(a->component_data(),
                         a->component_data() + a->num_components(),
                         b->component_data()))
      << "component arenas differ";
  for (ConceptId c = 0; c < a->num_concepts(); ++c) {
    const auto sa = a->spans(c);
    const auto sb = b->spans(c);
    ASSERT_EQ(sa.size(), sb.size()) << "concept " << c;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].offset, sb[i].offset) << "concept " << c;
      EXPECT_EQ(sa[i].length, sb[i].length) << "concept " << c;
    }
    const auto ra = a->ranks(c);
    const auto rb = b->ranks(c);
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
        << "ranks differ for concept " << c;
  }
}

/// Bitwise result equality between two engines over seeded RDS probes
/// (drawn over the full evolved id range, so batch-new concepts appear
/// in queries) plus SDS from a few documents.
void ExpectSameSearchResults(core::RankingEngine* live,
                             core::RankingEngine* cold, std::uint64_t seed,
                             std::uint32_t num_concepts) {
  std::mt19937_64 rng(seed * 131 + 7);
  std::uniform_int_distribution<ConceptId> id_dist(0, num_concepts - 1);
  std::uniform_int_distribution<int> size_dist(1, 3);
  for (int q = 0; q < 8; ++q) {
    std::set<ConceptId> concepts;
    const int want = size_dist(rng);
    while (static_cast<int>(concepts.size()) < want) {
      concepts.insert(id_dist(rng));
    }
    const std::vector<ConceptId> query(concepts.begin(), concepts.end());
    const auto a = live->FindRelevant(query, 10);
    const auto b = cold->FindRelevant(query, 10);
    ASSERT_EQ(a.ok(), b.ok()) << a.status().ToString();
    if (!a.ok()) continue;
    ASSERT_EQ(a->size(), b->size()) << "query " << q;
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id) << "query " << q << " rank " << i;
      EXPECT_EQ((*a)[i].distance, (*b)[i].distance)
          << "query " << q << " rank " << i;
    }
    // A memo-warm rerun must reproduce the cold-memo answer bit for bit.
    const auto a2 = live->FindRelevant(query, 10);
    ASSERT_TRUE(a2.ok());
    ASSERT_EQ(a2->size(), a->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a2)[i].id, (*a)[i].id);
      EXPECT_EQ((*a2)[i].distance, (*a)[i].distance);
    }
  }
  const corpus::DocId num_docs = live->corpus().num_documents();
  for (corpus::DocId d = 0; d < num_docs; d += 17) {
    const auto a = live->FindSimilar(d, 5);
    const auto b = cold->FindSimilar(d, 5);
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) continue;
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id) << "doc " << d;
      EXPECT_EQ((*a)[i].distance, (*b)[i].distance) << "doc " << d;
    }
  }
}

// ---------------------------------------------------------------------------
// 20-seed differential: incremental evolution vs cold rebuild, at the
// snapshot level (pool bytes, hashes) and the engine level (search
// results), across {1,8} threads x memo on/off (axes rotate by seed so
// every combination is covered five times).

TEST(OntologyEvolutionDifferential, TwentySeedsIncrementalEqualsColdRebuild) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 3);
    const ontology::Ontology base_dag = MakeOntology(seed);
    const corpus::Corpus corpus = MakeCorpus(base_dag, seed);

    core::RankingEngineOptions options;
    options.knds.num_threads = (seed % 2 == 0) ? 1 : 8;
    options.knds.cache.enable_ddq_memo = (seed / 2) % 2 == 0;
    options.knds.cache.enable_concept_pair_cache = true;

    auto live = core::RankingEngine::Create(MakeOntology(seed), options);
    ASSERT_TRUE(live->AddCorpus(corpus).ok());

    // Warm the caches pre-mutation so invalidation runs against real
    // entries, then evolve the live engine batch by batch.
    ExpectSameSearchResults(live.get(), live.get(), seed,
                            base_dag.num_concepts());
    std::vector<OntologyMutation> all_mutations;
    std::vector<std::uint8_t> retired_mirror;
    std::uniform_int_distribution<int> batches_dist(2, 3);
    const int num_batches = batches_dist(rng);
    for (int b = 0; b < num_batches; ++b) {
      const auto batch = MakeBatch(
          rng, live->ontology_snapshot()->dag(), &retired_mirror,
          "E" + std::to_string(seed) + "_" + std::to_string(b));
      const bool structural = std::any_of(
          batch.begin(), batch.end(), [](const OntologyMutation& m) {
            return m.kind != OntologyMutation::Kind::kRetireConcept;
          });
      const auto stats = live->ApplyOntologyMutations(batch);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      // The incremental path must have been taken (the engine
      // precomputes, so the enumerator is always frozen)...
      EXPECT_FALSE(stats->full_rebuild);
      if (structural) {
        // ...and must be partial: untouched concepts are reused.
        EXPECT_EQ(stats->reused_concepts + stats->readdressed_concepts,
                  live->ontology_snapshot()->dag().num_concepts());
        EXPECT_GT(stats->reused_concepts, 0u);
      } else {
        // Retire-only batches share the base enumerator outright.
        EXPECT_EQ(stats->readdressed_concepts, 0u);
      }
      all_mutations.insert(all_mutations.end(), batch.begin(), batch.end());
    }

    // Cold side: one-shot rebuild of the final ontology, retires
    // replayed as flag-only mutations (they never re-enumerate, so the
    // cold engine's pool stays a genuinely cold enumeration).
    std::vector<std::uint8_t> cold_retired;
    auto cold_dag =
        ontology::ApplyMutations(base_dag, all_mutations, &cold_retired);
    ASSERT_TRUE(cold_dag.ok()) << cold_dag.status().ToString();
    retired_mirror.resize(cold_retired.size(), 0);
    ASSERT_EQ(cold_retired, retired_mirror);

    // The DAG is move-only; rebuild it a second time for the cold
    // engine (ApplyMutations is deterministic).
    auto cold_dag_again =
        ontology::ApplyMutations(base_dag, all_mutations, nullptr);
    ASSERT_TRUE(cold_dag_again.ok());

    const auto live_snap = live->ontology_snapshot();
    const auto cold_snap = OntologySnapshot::Restore(
        std::make_shared<const ontology::Ontology>(std::move(*cold_dag)),
        cold_retired, live_snap->version(), live_snap->baseline_hash(),
        live_snap->options(), /*precompute=*/true);
    EXPECT_EQ(live_snap->identity_hash(), cold_snap->identity_hash());
    EXPECT_EQ(live_snap->structural_hash(), cold_snap->structural_hash());
    EXPECT_EQ(live_snap->num_retired(), cold_snap->num_retired());
    ExpectSamePool(live_snap->addresses()->flat_pool(),
                   cold_snap->addresses()->flat_pool());

    auto cold = core::RankingEngine::Create(
        std::move(cold_dag_again).value(), options);
    ASSERT_TRUE(cold->AddCorpus(corpus).ok());
    for (ConceptId c = 0; c < cold_retired.size(); ++c) {
      if (cold_retired[c] != 0) {
        ASSERT_TRUE(cold->RetireConcept(c).ok());
      }
    }
    EXPECT_EQ(live->ontology_stats().identity_hash,
              cold->ontology_stats().identity_hash);
    ExpectSameSearchResults(live.get(), cold.get(), seed + 1000,
                            live_snap->dag().num_concepts());
  }
}

// ---------------------------------------------------------------------------
// No-op control: a retire-only batch re-addresses nothing, shares the
// base DAG + enumerator outright, and keeps every cache entry.

TEST(OntologyEvolutionControl, RetireOnlyBatchReusesEverything) {
  const auto base = OntologySnapshot::Baseline(
      std::make_shared<const ontology::Ontology>(MakeOntology(3)));
  OntologyMutation m;
  m.kind = OntologyMutation::Kind::kRetireConcept;
  m.target = base->dag().num_concepts() - 1;
  EvolutionStats stats;
  const auto next = ontology::EvolveSnapshot(base, {&m, 1}, &stats);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(stats.readdressed_concepts, 0u);
  EXPECT_EQ(stats.readdressed_existing, 0u);
  EXPECT_EQ(stats.recomputed_components, 0u);
  EXPECT_TRUE(stats.invalidated_existing.empty());
  EXPECT_FALSE(stats.full_rebuild);
  // The successor shares the DAG and the enumerator (hence the whole
  // FlatDeweyPool) with its base: zero re-enumeration work.
  EXPECT_EQ((*next)->dag_ptr().get(), base->dag_ptr().get());
  EXPECT_EQ((*next)->addresses_ptr().get(), base->addresses_ptr().get());
  EXPECT_EQ((*next)->version(), base->version() + 1);
  EXPECT_TRUE((*next)->retired(m.target));
  // Retirement flips the identity but not the structural hash, so Ddq
  // memo entries (salted with the structural hash) all stay valid.
  EXPECT_NE((*next)->identity_hash(), base->identity_hash());
  EXPECT_EQ((*next)->structural_hash(), base->structural_hash());
}

TEST(OntologyEvolutionControl, EngineRetireKeepsCachesWarm) {
  const std::uint64_t seed = 5;
  const ontology::Ontology base_dag = MakeOntology(seed);
  const corpus::Corpus docs = MakeCorpus(base_dag, seed);
  core::RankingEngineOptions options;
  options.knds.num_threads = 1;
  auto engine = core::RankingEngine::Create(MakeOntology(seed), options);
  ASSERT_TRUE(engine->AddCorpus(docs).ok());

  // Warm both caches, record the exact answers. The pair cache is fed
  // through the engine's shared instance by DistanceOracle users; the
  // Ddq memo fills during the cold searches.
  const auto queries = corpus::GenerateRdsQueries(docs, 6, 4, seed + 1);
  std::vector<std::vector<core::ScoredDocument>> before;
  for (const auto& query : queries) {
    const auto results = engine->FindRelevant(query, 10);
    ASSERT_TRUE(results.ok());
    before.push_back(*results);
  }
  ASSERT_GT(engine->ddq_memo_counters().misses, 0u);
  ontology::DistanceOracle oracle(engine->ontology(),
                                  engine->concept_pair_cache());
  for (ConceptId c = 1; c < 30; ++c) {
    (void)oracle.ConceptDistance(c, c + 1);
  }
  const std::size_t pair_entries_before =
      engine->concept_pair_cache()->size();
  ASSERT_GT(pair_entries_before, 0u);
  const std::uint64_t memo_hits_before = engine->ddq_memo_counters().hits;

  const auto stats = engine->RetireConcept(base_dag.num_concepts() - 1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->readdressed_concepts, 0u);
  EXPECT_EQ(engine->ontology_stats().pair_entries_invalidated, 0u);
  // Full retention: not one pair entry was dropped.
  EXPECT_EQ(engine->concept_pair_cache()->size(), pair_entries_before);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto after = engine->FindRelevant(queries[q], 10);
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(after->size(), before[q].size());
    for (std::size_t i = 0; i < after->size(); ++i) {
      EXPECT_EQ((*after)[i].id, before[q][i].id);
      EXPECT_EQ((*after)[i].distance, before[q][i].distance);
    }
  }
  // The reruns hit the memo: retire-only evolution keeps the
  // structural hash, so the salted signatures still match.
  EXPECT_GT(engine->ddq_memo_counters().hits, memo_hits_before);
}

// ---------------------------------------------------------------------------
// Single-leaf add: exactly one concept (the new leaf) is re-addressed,
// every pre-existing concept's spans are spliced from the base pool,
// and ConceptPairCache retention is 100% (the issue demands >= 90%).

TEST(OntologyEvolutionControl, SingleLeafAddReaddressesOnlyTheLeaf) {
  const std::uint64_t seed = 7;
  const ontology::Ontology base_dag = MakeOntology(seed);
  const std::uint32_t base_n = base_dag.num_concepts();
  auto engine = core::RankingEngine::Create(MakeOntology(seed));
  ASSERT_TRUE(engine->AddCorpus(MakeCorpus(base_dag, seed)).ok());

  // Warm the pair cache through the engine's shared instance.
  ontology::DistanceOracle oracle(engine->ontology(),
                                  engine->concept_pair_cache());
  for (ConceptId c = 1; c + 2 < 60; ++c) {
    (void)oracle.ConceptDistance(c, c + 2);
  }
  const std::size_t pair_entries_before =
      engine->concept_pair_cache()->size();
  ASSERT_GT(pair_entries_before, 0u);

  const auto stats = engine->AddConcept("leaf_under_9", {9});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->added_concepts, 1u);
  EXPECT_EQ(stats->added_edges, 1u);
  EXPECT_EQ(stats->readdressed_concepts, 1u);  // the leaf, nothing else
  EXPECT_EQ(stats->readdressed_existing, 0u);
  EXPECT_EQ(stats->reused_concepts, base_n);
  EXPECT_TRUE(stats->invalidated_existing.empty());
  EXPECT_FALSE(stats->full_rebuild);
  EXPECT_GT(stats->reused_components, 0u);

  // 100% pair-cache retention (>= 90% required).
  EXPECT_EQ(engine->concept_pair_cache()->size(), pair_entries_before);
  EXPECT_EQ(engine->ontology_stats().pair_entries_invalidated, 0u);

  // The leaf's addresses are its parent's, each extended by the new
  // child ordinal — and the spliced pool equals a cold enumeration.
  const auto snap = engine->ontology_snapshot();
  const ConceptId leaf = snap->dag().FindByName("leaf_under_9");
  ASSERT_EQ(leaf, base_n);
  const auto& leaf_addresses = snap->addresses()->Addresses(leaf);
  const auto& parent_addresses = snap->addresses()->Addresses(9);
  ASSERT_EQ(leaf_addresses.size(), parent_addresses.size());
  const auto cold_snap = OntologySnapshot::Restore(
      snap->dag_ptr(), {}, snap->version(), snap->baseline_hash(),
      snap->options(), /*precompute=*/true);
  ExpectSamePool(snap->addresses()->flat_pool(),
                 cold_snap->addresses()->flat_pool());
}

// ---------------------------------------------------------------------------
// BlockPostings::BuildEvolved: for a distance-preserving batch the
// incremental sidecar build must be byte-identical to a cold build
// over the same documents under the evolved ontology.

TEST(OntologyEvolutionPostings, BuildEvolvedMatchesColdBuildByteForByte) {
  const std::uint64_t seed = 11;
  const ontology::Ontology base_dag = MakeOntology(seed, 150);
  const corpus::Corpus corpus = MakeCorpus(base_dag, seed, 90);
  index::BlockPostingsOptions options;
  options.block_size = 32;
  const index::BlockPostings base(corpus, options);

  // Three new leaves plus an extra edge landing on a batch-new child:
  // every edge targets a new concept, so the batch preserves all
  // pre-existing distances.
  std::vector<OntologyMutation> mutations(4);
  mutations[0].kind = OntologyMutation::Kind::kAddConcept;
  mutations[0].name = "evolved_a";
  mutations[0].parents = {3, 25};
  mutations[1].kind = OntologyMutation::Kind::kAddConcept;
  mutations[1].name = "evolved_b";
  mutations[1].parents = {base_dag.num_concepts() - 1};
  mutations[2].kind = OntologyMutation::Kind::kAddConcept;
  mutations[2].name = "evolved_c";
  mutations[2].parents = {static_cast<ConceptId>(base_dag.num_concepts())};
  mutations[3].kind = OntologyMutation::Kind::kAddEdge;
  mutations[3].parent = 60;
  mutations[3].child = static_cast<ConceptId>(base_dag.num_concepts() + 1);
  ASSERT_TRUE(ontology::DistancePreservingMutations(
      mutations, base_dag.num_concepts()));

  auto evolved = ontology::ApplyMutations(base_dag, mutations, nullptr);
  ASSERT_TRUE(evolved.ok()) << evolved.status().ToString();

  const index::BlockPostings incremental =
      index::BlockPostings::BuildEvolved(base, *evolved);

  corpus::Corpus rebound = corpus;
  rebound.RebindOntology(*evolved);
  const index::BlockPostings cold(rebound, options);

  ASSERT_EQ(incremental.num_concepts(), cold.num_concepts());
  ASSERT_EQ(incremental.num_documents(), cold.num_documents());
  ASSERT_EQ(incremental.num_blocks(), cold.num_blocks());
  const auto arena_a = incremental.arena();
  const auto arena_b = cold.arena();
  ASSERT_EQ(arena_a.size(), arena_b.size());
  EXPECT_TRUE(
      std::equal(arena_a.begin(), arena_a.end(), arena_b.begin()))
      << "payload arenas differ";
  for (ConceptId c = 0; c < incremental.num_concepts(); ++c) {
    const auto ma = incremental.blocks(c);
    const auto mb = cold.blocks(c);
    ASSERT_EQ(ma.size(), mb.size()) << "concept " << c;
    for (std::size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].offset, mb[i].offset) << "concept " << c;
      EXPECT_EQ(ma[i].length, mb[i].length) << "concept " << c;
      EXPECT_EQ(ma[i].first_doc, mb[i].first_doc) << "concept " << c;
      EXPECT_EQ(ma[i].max_doc, mb[i].max_doc) << "concept " << c;
      EXPECT_EQ(ma[i].min_distance, mb[i].min_distance) << "concept " << c;
      EXPECT_EQ(ma[i].count, mb[i].count) << "concept " << c;
    }
    const auto oa = incremental.distance_order(c);
    const auto ob = cold.distance_order(c);
    ASSERT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin(), ob.end()))
        << "distance order differs for concept " << c;
  }
}

// ---------------------------------------------------------------------------
// Mutation scripts: the text form ecdr_query --mutate_script and the
// serve admin endpoints build on.

TEST(OntologyEvolutionScript, ParsesAndMatchesDirectMutations) {
  const ontology::Ontology base = MakeOntology(13, 60);
  const std::string script =
      "# evolve the demo ontology\n"
      "add_concept extra_leaf C4 C9\n"
      "add_concept deeper extra_leaf\n"
      "\n"
      "add_edge C7 deeper\n"
      "retire_concept C11\n";
  const auto mutations = ontology::ParseMutationScript(script, base);
  ASSERT_TRUE(mutations.ok()) << mutations.status().ToString();
  ASSERT_EQ(mutations->size(), 4u);
  EXPECT_EQ((*mutations)[0].kind, OntologyMutation::Kind::kAddConcept);
  EXPECT_EQ((*mutations)[0].parents,
            (std::vector<ConceptId>{base.FindByName("C4"),
                                    base.FindByName("C9")}));
  // "deeper" resolves to the id the script's own add_concept will get.
  EXPECT_EQ((*mutations)[2].child, base.num_concepts() + 1);
  EXPECT_EQ((*mutations)[3].kind, OntologyMutation::Kind::kRetireConcept);
  EXPECT_EQ((*mutations)[3].target, base.FindByName("C11"));

  auto engine = core::RankingEngine::Create(MakeOntology(13, 60));
  const auto stats = engine->ApplyOntologyMutations(*mutations);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->added_concepts, 2u);
  EXPECT_EQ(stats->retired_concepts, 1u);
  EXPECT_EQ(stats->added_edges, 4u);  // 3 parent edges + 1 add_edge
  EXPECT_NE(engine->ontology_snapshot()->dag().FindByName("deeper"),
            ontology::kInvalidConcept);
}

TEST(OntologyEvolutionScript, RejectsInvalidMutations) {
  const ontology::Ontology base = MakeOntology(13, 60);
  auto engine = core::RankingEngine::Create(MakeOntology(13, 60));

  // Unknown parent name.
  EXPECT_FALSE(
      ontology::ParseMutationScript("add_concept x NOPE\n", base).ok());
  // Duplicate concept name.
  EXPECT_FALSE(engine->AddConcept("C4", {0}).ok());
  // Retiring the root.
  EXPECT_FALSE(engine->RetireConcept(base.root()).ok());
  // Duplicate edge.
  const ConceptId child = base.children(base.root()).front();
  EXPECT_FALSE(engine->AddOntologyEdge(base.root(), child).ok());
  // A rejected batch leaves the engine untouched.
  EXPECT_EQ(engine->ontology_stats().version, 0u);
  EXPECT_EQ(engine->ontology_stats().evolutions, 0u);
}

// ---------------------------------------------------------------------------
// Durability: mutations are WAL-logged ahead of visibility, images
// stamp the evolved ontology, and recovery restores the exact version
// — WAL-only, post-checkpoint, and across a second evolution epoch.

TEST(OntologyEvolutionDurability, WalAndImageRoundTripTheEvolvedVersion) {
  const std::uint64_t seed = 17;
  storage::FaultyEnv env;
  core::RankingEngineOptions options;
  options.storage.data_dir = "/db";
  options.storage.env = &env;

  const ontology::Ontology reference = MakeOntology(seed);
  std::vector<OntologyMutation> mutations(2);
  mutations[0].kind = OntologyMutation::Kind::kAddConcept;
  mutations[0].name = "durable_leaf";
  mutations[0].parents = {5, 12};
  mutations[1].kind = OntologyMutation::Kind::kRetireConcept;
  mutations[1].target = 30;

  std::uint64_t identity = 0;
  std::vector<core::ScoredDocument> expected;
  const std::vector<ConceptId> probe{5, 12, reference.num_concepts()};
  {
    auto engine = core::RankingEngine::Open(MakeOntology(seed), options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    std::mt19937_64 rng(seed);
    for (int d = 0; d < 60; ++d) {
      std::vector<ConceptId> concepts;
      std::uniform_int_distribution<ConceptId> dist(
          0, reference.num_concepts() - 1);
      for (int i = 0; i < 6; ++i) concepts.push_back(dist(rng));
      std::sort(concepts.begin(), concepts.end());
      concepts.erase(std::unique(concepts.begin(), concepts.end()),
                     concepts.end());
      ASSERT_TRUE((*engine)->AddDocument(std::move(concepts)).ok());
    }
    ASSERT_TRUE((*engine)->ApplyOntologyMutations(mutations).ok());
    const auto stats = (*engine)->ontology_stats();
    EXPECT_EQ(stats.version, 2u);  // one version step per mutation
    identity = stats.identity_hash;
    const auto results = (*engine)->FindRelevant(probe, 10);
    ASSERT_TRUE(results.ok());
    expected = *results;
    ASSERT_TRUE((*engine)->SyncDurability().ok());
  }

  // WAL-only recovery (no checkpoint was taken): the mutation records
  // replay on top of the boot baseline.
  {
    auto engine = core::RankingEngine::Open(MakeOntology(seed), options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const auto stats = (*engine)->ontology_stats();
    EXPECT_EQ(stats.version, 2u);
    EXPECT_EQ(stats.identity_hash, identity);
    EXPECT_EQ(stats.num_retired, 1u);
    EXPECT_NE((*engine)->ontology_snapshot()->dag().FindByName(
                  "durable_leaf"),
              ontology::kInvalidConcept);
    const auto results = (*engine)->FindRelevant(probe, 10);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*results)[i].id, expected[i].id);
      EXPECT_EQ((*results)[i].distance, expected[i].distance);
    }
    // Checkpoint stamps the image with the evolved ontology, then a
    // second evolution epoch lands on top of it.
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    ASSERT_TRUE((*engine)->AddConcept("post_checkpoint", {5}).ok());
    identity = (*engine)->ontology_stats().identity_hash;
    ASSERT_TRUE((*engine)->SyncDurability().ok());
  }

  // Image + post-image WAL recovery.
  {
    auto engine = core::RankingEngine::Open(MakeOntology(seed), options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const auto stats = (*engine)->ontology_stats();
    EXPECT_EQ(stats.version, 3u);
    EXPECT_EQ(stats.identity_hash, identity);
    const auto results = (*engine)->FindRelevant(probe, 10);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*results)[i].id, expected[i].id);
      EXPECT_EQ((*results)[i].distance, expected[i].distance);
    }
  }

  // A foreign baseline ontology must not adopt the image: the lineage
  // hash stamped into it cannot match, so recovery skips the image
  // (the store's policy is to recover around bad artifacts, never to
  // destroy them) and the foreign boot keeps its own version-0 hash.
  {
    auto engine =
        core::RankingEngine::Open(MakeOntology(seed + 1, 120), options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_GT((*engine)->durability_stats().store.images_skipped, 0u);
    EXPECT_NE((*engine)->ontology_stats().identity_hash, identity);
  }
}

}  // namespace
}  // namespace ecdr
