// Malformed-input suite for the serving front-end's HTTP parser and
// strict JSON parser (mirrors corrupt_input_test.cc): every hostile
// byte sequence must produce a clean 4xx/5xx classification — never a
// crash, never an accepted smuggle — and a seeded random-splice fuzz
// loop runs the same state machines under the asan/ubsan preset.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "serve/http.h"
#include "serve/json.h"

namespace ecdr::serve {
namespace {

/// Feeds `wire` in one piece; returns the parser for inspection.
HttpParser Feed(const std::string& wire, HttpParserLimits limits = {}) {
  HttpParser parser(limits);
  parser.Feed(wire);
  return parser;
}

TEST(HttpParserTest, ParsesSimplePost) {
  HttpParser parser =
      Feed("POST /v1/search HTTP/1.1\r\nHost: x\r\nContent-Length: "
           "2\r\n\r\n{}");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().target, "/v1/search");
  EXPECT_EQ(parser.request().body, "{}");
  EXPECT_TRUE(parser.request().KeepAlive());
}

TEST(HttpParserTest, ParsesChunkedBodyAndHeaderCase) {
  HttpParser parser =
      Feed("POST / HTTP/1.1\r\nTRANSFER-ENCODING: chunked\r\n\r\n"
           "3\r\nabc\r\n0\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "abc");
  // Header names are lowercased on ingest.
  EXPECT_NE(parser.request().FindHeader("transfer-encoding"), nullptr);
}

TEST(HttpParserTest, IncrementalFeedAcrossEveryBoundary) {
  const std::string wire =
      "POST /v1/search HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  for (std::size_t split = 1; split < wire.size(); ++split) {
    HttpParser parser;
    parser.Feed(std::string_view(wire).substr(0, split));
    EXPECT_FALSE(parser.failed()) << "split " << split;
    parser.Feed(std::string_view(wire).substr(split));
    ASSERT_TRUE(parser.done()) << "split " << split;
    EXPECT_EQ(parser.request().body, "hello") << "split " << split;
  }
}

TEST(HttpParserTest, ConnectionCloseDisablesKeepAlive) {
  HttpParser parser =
      Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().KeepAlive());
  // HTTP/1.0 defaults to close.
  HttpParser parser10 = Feed("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(parser10.done());
  EXPECT_FALSE(parser10.request().KeepAlive());
}

struct MalformedCase {
  const char* name;
  std::string wire;
  int want_status;  // expected 4xx/5xx classification
};

std::vector<MalformedCase> MalformedCases() {
  std::vector<MalformedCase> cases = {
      {"bare-lf-request-line", "GET / HTTP/1.1\nHost: x\r\n\r\n", 400},
      {"nul-in-request-line", std::string("GET /\0 HTTP/1.1\r\n\r\n", 19),
       400},
      {"missing-version", "GET /\r\n\r\n", 400},
      {"two-spaces", "GET  / HTTP/1.1\r\n\r\n", 400},
      {"bad-version", "GET / HTTP/2.0\r\n\r\n", 505},
      {"lowercase-version", "GET / http/1.1\r\n\r\n", 505},
      {"target-no-slash", "GET v1/search HTTP/1.1\r\n\r\n", 400},
      {"control-in-target", "GET /\x01 HTTP/1.1\r\n\r\n", 400},
      {"header-no-colon", "GET / HTTP/1.1\r\nHostx\r\n\r\n", 400},
      {"header-space-before-colon", "GET / HTTP/1.1\r\nHost : x\r\n\r\n",
       400},
      {"obs-fold", "GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n", 400},
      {"control-in-header-value", "GET / HTTP/1.1\r\nA: b\x01\r\n\r\n", 400},
      {"content-length-not-a-number",
       "POST / HTTP/1.1\r\nContent-Length: 2x\r\n\r\n{}", 400},
      {"content-length-negative",
       "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
      {"content-length-overflow",
       "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
       400},
      {"conflicting-duplicate-content-length",
       "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n{}",
       400},
      {"smuggle-cl-plus-te",
       "POST / HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: "
       "chunked\r\n\r\n0\r\n\r\n",
       400},
      {"te-not-chunked",
       "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", 501},
      {"chunk-size-not-hex",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n", 400},
      {"chunk-size-overflow",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
       "fffffffffffffffff\r\n",
       400},
      {"chunk-data-bad-terminator",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
       "3\r\nabcXY\r\n",
       400},
  };
  return cases;
}

TEST(HttpParserTest, MalformedInputsFailCleanly) {
  for (const MalformedCase& test_case : MalformedCases()) {
    HttpParser parser = Feed(test_case.wire);
    EXPECT_TRUE(parser.failed()) << test_case.name;
    EXPECT_FALSE(parser.done()) << test_case.name;
    EXPECT_EQ(parser.error_status(), test_case.want_status)
        << test_case.name << ": " << parser.error_detail();
  }
}

TEST(HttpParserTest, LimitsAreEnforced) {
  HttpParserLimits limits;
  limits.max_request_line_bytes = 64;
  limits.max_header_bytes = 128;
  limits.max_headers = 4;
  limits.max_body_bytes = 16;

  // Oversized request line -> 431.
  HttpParser parser =
      Feed("GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n", limits);
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);

  // Too many headers -> 431.
  parser = Feed("GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\nD: 4\r\nE: "
                "5\r\n\r\n",
                limits);
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);

  // Declared body over the limit -> 413, before any body byte arrives.
  parser = Feed("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n", limits);
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);

  // Chunked body crossing the limit -> 413.
  parser = Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n11\r\n"
      "0123456789abcdef0\r\n",
      limits);
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);

  // Wrap attack: after a small accepted chunk, a declared size near
  // 2^64 must still 413 — `body.size() + size` alone would overflow
  // right past the limit check and admit an unbounded body.
  parser = Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n"
      "ffffffffffffffff\r\n",
      limits);
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, ErrorDetailsEscapeNonAsciiClientBytes) {
  // Raw high bytes in a chunk-size line are echoed into the error
  // detail; they must come back hex-escaped so the JSON error body
  // stays valid UTF-8.
  HttpParser parser = Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\x80\xff\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
  for (const char c : parser.error_detail()) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20);
    EXPECT_LT(static_cast<unsigned char>(c), 0x7f);
  }
}

TEST(HttpParserTest, TruncatedRequestsAreJustIncomplete) {
  const std::string wire =
      "POST /v1/search HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345";
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    HttpParser parser = Feed(wire.substr(0, cut));
    EXPECT_FALSE(parser.done()) << "cut " << cut;
    EXPECT_FALSE(parser.failed()) << "cut " << cut << ": "
                                  << parser.error_detail();
  }
}

// ---------------------------------------------------------------------------
// Strict JSON

TEST(ServeJsonTest, ParsesRequestShapes) {
  auto value = json::Parse(
      "{\"concepts\":[1,2,3],\"k\":10,\"eps_theta\":0.25,"
      "\"deadline_ms\":50.5,\"mode\":\"rds\"}");
  ASSERT_TRUE(value.ok());
  ASSERT_TRUE(value->is_object());
  EXPECT_EQ(value->Find("concepts")->array.size(), 3u);
  EXPECT_EQ(value->Find("k")->number, 10.0);
  EXPECT_EQ(value->Find("mode")->string, "rds");
  EXPECT_EQ(value->Find("nope"), nullptr);
}

TEST(ServeJsonTest, RejectsMalformedDocuments) {
  const char* cases[] = {
      "",
      "{",
      "[1,2",
      "{\"a\":}",
      "{\"a\":1,}",
      "[1,]",
      "{'a':1}",
      "01",
      "+1",
      "1.",
      ".5",
      "1e",
      "0x10",
      "Infinity",
      "NaN",
      "tru",
      "nul",
      "\"unterminated",
      "\"bad\\escape\"",
      "\"bad\\u12g4\"",
      "{} {}",
      "1 2",
  };
  for (const char* text : cases) {
    EXPECT_FALSE(json::Parse(text).ok()) << text;
  }
}

TEST(ServeJsonTest, RejectsOutOfRangeNumbers) {
  EXPECT_FALSE(json::Parse("1e999").ok());
  EXPECT_FALSE(json::Parse("-1e999").ok());
  EXPECT_FALSE(json::Parse("{\"k\":1e999}").ok());
  // Subnormal-range and large-but-finite values are fine.
  EXPECT_TRUE(json::Parse("1e308").ok());
  EXPECT_TRUE(json::Parse("-2.5e-300").ok());
}

TEST(ServeJsonTest, RejectsInvalidUtf8) {
  // Raw invalid bytes inside strings.
  EXPECT_FALSE(json::Parse("\"\x80\"").ok());          // bare continuation
  EXPECT_FALSE(json::Parse("\"\xC0\xAF\"").ok());      // overlong '/'
  EXPECT_FALSE(json::Parse("\"\xED\xA0\x80\"").ok());  // surrogate U+D800
  EXPECT_FALSE(json::Parse("\"\xF4\x90\x80\x80\"").ok());  // > U+10FFFF
  EXPECT_FALSE(json::Parse("\"\xC2\"").ok());          // truncated sequence
  // Escaped lone surrogates.
  EXPECT_FALSE(json::Parse("\"\\uD800\"").ok());
  EXPECT_FALSE(json::Parse("\"\\uDC00x\"").ok());
  // Valid pairs and multibyte sequences pass.
  EXPECT_TRUE(json::Parse("\"\\uD83D\\uDE00\"").ok());
  EXPECT_TRUE(json::Parse("\"\xE2\x82\xAC\"").ok());  // euro sign

  EXPECT_TRUE(json::IsValidUtf8("plain ascii"));
  EXPECT_FALSE(json::IsValidUtf8("\xFF"));
}

TEST(ServeJsonTest, DepthAndElementLimits) {
  // Depth counts nesting below the document value, inclusive: with
  // max_depth 4 a number inside 4 arrays parses, inside 5 does not.
  json::ParseLimits limits;
  limits.max_depth = 4;
  EXPECT_TRUE(json::Parse("[[[[1]]]]", limits).ok());
  EXPECT_FALSE(json::Parse("[[[[[1]]]]]", limits).ok());
  // The element budget counts every value, containers included:
  // "[1,2,3]" is four values.
  limits = json::ParseLimits{};
  limits.max_elements = 4;
  EXPECT_TRUE(json::Parse("[1,2,3]", limits).ok());
  EXPECT_FALSE(json::Parse("[1,2,3,4]", limits).ok());
}

TEST(ServeJsonTest, AppendDoubleRoundTripsBits) {
  const double values[] = {0.0,    -0.0,   1.0,       1.0 / 3.0,
                           2.5e17, 1e-300, 0.1 + 0.2, 123456.789};
  for (const double value : values) {
    std::string text;
    json::AppendDouble(&text, value);
    auto parsed = json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    // Bit-exact round trip, the property the differential test rides on.
    EXPECT_EQ(parsed->number, value) << text;
  }
}

// ---------------------------------------------------------------------------
// Seeded splice fuzzing (runs under the asan/ubsan preset via the
// robustness label): mutate valid wire images and random garbage, feed
// in random-sized chunks, and require the parser to land in exactly
// one of {done, failed, needs-more} without ever crashing.

TEST(HttpParserFuzzTest, RandomSplicesNeverCrash) {
  const std::string valid =
      "POST /v1/search HTTP/1.1\r\nHost: x\r\nContent-Type: "
      "application/json\r\nContent-Length: 24\r\n\r\n"
      "{\"concepts\":[1],\"k\":10}";
  std::mt19937_64 rng(0xEC0DEu);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string wire = valid;
    const int splices = 1 + static_cast<int>(rng() % 8);
    for (int s = 0; s < splices; ++s) {
      const std::size_t pos = rng() % (wire.size() + 1);
      switch (rng() % 3) {
        case 0:  // overwrite a byte
          if (pos < wire.size()) {
            wire[pos] = static_cast<char>(rng() % 256);
          }
          break;
        case 1:  // insert a random byte
          wire.insert(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                      static_cast<char>(rng() % 256));
          break;
        case 2:  // delete a byte
          if (pos < wire.size()) {
            wire.erase(wire.begin() + static_cast<std::ptrdiff_t>(pos));
          }
          break;
      }
    }
    HttpParser parser;
    std::string_view rest = wire;
    while (!rest.empty() && !parser.done() && !parser.failed()) {
      const std::size_t chunk =
          1 + rng() % std::min<std::size_t>(rest.size(), 64);
      const std::size_t consumed = parser.Feed(rest.substr(0, chunk));
      EXPECT_LE(consumed, chunk);
      rest.remove_prefix(consumed);
      if (consumed == 0 && !parser.done() && !parser.failed()) {
        // Parser wants more bytes than this chunk held.
        rest.remove_prefix(std::min(chunk, rest.size()));
      }
    }
    if (parser.failed()) {
      EXPECT_GE(parser.error_status(), 400);
      EXPECT_LT(parser.error_status(), 600);
    }
  }
}

TEST(ServeJsonFuzzTest, RandomBytesNeverCrash) {
  std::mt19937_64 rng(0xBADF00Du);
  const std::string seeds[] = {
      "{\"concepts\":[1,2],\"k\":5,\"eps_theta\":0.5}",
      "[1,[2,[3,[4]]],\"\\uD83D\\uDE00\",null,true,-1.5e-7]",
  };
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string text = seeds[iteration % 2];
    const int splices = 1 + static_cast<int>(rng() % 6);
    for (int s = 0; s < splices; ++s) {
      const std::size_t pos = rng() % (text.size() + 1);
      if (rng() % 2 == 0 && pos < text.size()) {
        text[pos] = static_cast<char>(rng() % 256);
      } else {
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<char>(rng() % 256));
      }
    }
    // Must classify, never crash; the value itself is irrelevant.
    (void)json::Parse(text);
  }
}

}  // namespace
}  // namespace ecdr::serve
