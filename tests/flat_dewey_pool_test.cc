// FlatDeweyPool round-trip tests: the pool built by PrecomputeAll()
// must reproduce the legacy per-concept address vectors exactly — same
// address count, same components, same lexicographic order — because
// DRC's build consumes the pool verbatim and the D-Radix merge order
// (hence the whole ranking) depends on it.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/drc.h"
#include "ontology/dewey.h"
#include "ontology/generator.h"
#include "tests/fig3_fixture.h"
#include "util/random.h"

namespace ecdr::ontology {
namespace {

using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

// Pool spans of `c` must equal the legacy Addresses(c) vectors,
// element for element and in the same order.
void ExpectPoolMatchesLegacy(AddressEnumerator* enumerator,
                             const FlatDeweyPool* pool, ConceptId c) {
  const std::vector<DeweyAddress>& legacy = enumerator->Addresses(c);
  const std::span<const AddressSpan> spans = pool->spans(c);
  ASSERT_EQ(spans.size(), legacy.size()) << "concept " << c;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const std::span<const std::uint32_t> components =
        pool->components(spans[i]);
    EXPECT_TRUE(std::equal(components.begin(), components.end(),
                           legacy[i].begin(), legacy[i].end()))
        << "concept " << c << " address " << i << ": pool "
        << FormatDewey(components) << " vs legacy " << FormatDewey(legacy[i]);
  }
}

TEST(FlatDeweyPoolTest, RoundTripsGeneratedOntologies) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    OntologyGeneratorConfig config;
    config.num_concepts = 600;
    config.seed = seed;
    auto ontology = GenerateOntology(config);
    ASSERT_TRUE(ontology.ok()) << ontology.status().message();

    AddressEnumerator enumerator(*ontology);
    ASSERT_EQ(enumerator.flat_pool(), nullptr);  // Not frozen yet.
    enumerator.PrecomputeAll();
    const FlatDeweyPool* pool = enumerator.flat_pool();
    ASSERT_NE(pool, nullptr) << "seed " << seed;
    ASSERT_EQ(pool->num_concepts(), ontology->num_concepts());

    std::uint64_t total_addresses = 0;
    for (ConceptId c = 0; c < ontology->num_concepts(); ++c) {
      ExpectPoolMatchesLegacy(&enumerator, pool, c);
      total_addresses += pool->spans(c).size();
    }
    EXPECT_EQ(pool->num_addresses(), total_addresses) << "seed " << seed;
  }
}

TEST(FlatDeweyPoolTest, RootHasTheEmptyAddress) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  enumerator.PrecomputeAll();
  const FlatDeweyPool* pool = enumerator.flat_pool();
  ASSERT_NE(pool, nullptr);
  const std::span<const AddressSpan> root_spans =
      pool->spans(fig3.ontology.root());
  ASSERT_EQ(root_spans.size(), 1u);
  EXPECT_EQ(root_spans[0].length, 0u);
  EXPECT_TRUE(pool->components(root_spans[0]).empty());
}

TEST(FlatDeweyPoolTest, MultiParentConceptKeepsAllAddressesSorted) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  enumerator.PrecomputeAll();
  const FlatDeweyPool* pool = enumerator.flat_pool();
  ASSERT_NE(pool, nullptr);
  // J has parents G and F (Table 1): two addresses, lexicographically
  // sorted; R below J doubles them.
  const std::span<const AddressSpan> j = pool->spans(fig3['J']);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(FormatDewey(pool->components(j[0])), "1.1.1.2");
  EXPECT_EQ(FormatDewey(pool->components(j[1])), "3.1.1");
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    const std::span<const AddressSpan> spans = pool->spans(c);
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_FALSE(DeweyLess(pool->components(spans[i]),
                             pool->components(spans[i - 1])))
          << "concept " << c << " out of order at address " << i;
    }
    ExpectPoolMatchesLegacy(&enumerator, pool, c);
  }
}

TEST(FlatDeweyPoolTest, ClearCacheDropsThePool) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  enumerator.PrecomputeAll();
  ASSERT_NE(enumerator.flat_pool(), nullptr);
  enumerator.ClearCache();
  EXPECT_EQ(enumerator.flat_pool(), nullptr);
  // Re-precomputing rebuilds an identical pool.
  enumerator.PrecomputeAll();
  const FlatDeweyPool* pool = enumerator.flat_pool();
  ASSERT_NE(pool, nullptr);
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    ExpectPoolMatchesLegacy(&enumerator, pool, c);
  }
}

// The pool path (frozen) and the legacy path (unfrozen) must produce
// identical distances: same inserts in the same order (drc.cc's
// GatherInserts switches between them on flat_pool()).
TEST(FlatDeweyPoolTest, FrozenAndUnfrozenDistancesAgree) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator frozen(fig3.ontology);
  frozen.PrecomputeAll();
  AddressEnumerator unfrozen(fig3.ontology);
  core::Drc pool_drc(fig3.ontology, &frozen);
  core::Drc legacy_drc(fig3.ontology, &unfrozen);

  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  auto pool_ddq = pool_drc.DocQueryDistance(d, q);
  auto legacy_ddq = legacy_drc.DocQueryDistance(d, q);
  ASSERT_TRUE(pool_ddq.ok() && legacy_ddq.ok());
  EXPECT_EQ(*pool_ddq, *legacy_ddq);
  EXPECT_EQ(*pool_ddq, 7u);  // Example 1: 4 + 2 + 1.

  auto pool_ddd = pool_drc.DocDocDistance(d, q);
  auto legacy_ddd = legacy_drc.DocDocDistance(d, q);
  ASSERT_TRUE(pool_ddd.ok() && legacy_ddd.ok());
  EXPECT_EQ(*pool_ddd, *legacy_ddd);
}

// ---- Ranks and rank LCPs --------------------------------------------

// Collects every address span ordered by its global rank; fails the
// test if the ranks are not a permutation of [0, num_addresses).
std::vector<AddressSpan> SpansByRank(const Ontology& ontology,
                                     const FlatDeweyPool* pool) {
  std::vector<AddressSpan> by_rank(pool->num_addresses());
  std::vector<bool> seen(pool->num_addresses(), false);
  for (ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    const std::span<const AddressSpan> spans = pool->spans(c);
    const std::span<const std::uint32_t> ranks = pool->ranks(c);
    EXPECT_EQ(spans.size(), ranks.size()) << "concept " << c;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_LT(ranks[i], pool->num_addresses());
      EXPECT_FALSE(seen[ranks[i]]) << "duplicate rank " << ranks[i];
      seen[ranks[i]] = true;
      by_rank[ranks[i]] = spans[i];
    }
  }
  return by_rank;
}

TEST(FlatDeweyPoolTest, RanksAreTheGlobalLexicographicPermutation) {
  for (std::uint64_t seed : {3u, 11u}) {
    OntologyGeneratorConfig config;
    config.num_concepts = 400;
    config.extra_parent_prob = 0.3;
    config.seed = seed;
    auto ontology = GenerateOntology(config);
    ASSERT_TRUE(ontology.ok());
    AddressEnumerator enumerator(*ontology);
    enumerator.PrecomputeAll();
    const FlatDeweyPool* pool = enumerator.flat_pool();
    ASSERT_NE(pool, nullptr);

    const std::vector<AddressSpan> by_rank = SpansByRank(*ontology, pool);
    // Walking ranks in order must walk addresses in strictly increasing
    // Dewey order (strict because no two pool addresses are equal).
    for (std::size_t r = 1; r < by_rank.size(); ++r) {
      EXPECT_TRUE(DeweyLess(pool->components(by_rank[r - 1]),
                            pool->components(by_rank[r])))
          << "seed " << seed << " rank " << r;
    }
  }
}

TEST(FlatDeweyPoolTest, RankLcpMatchesPairwiseCommonPrefixes) {
  OntologyGeneratorConfig config;
  config.num_concepts = 400;
  config.extra_parent_prob = 0.3;
  config.seed = 17;
  auto ontology = GenerateOntology(config);
  ASSERT_TRUE(ontology.ok());
  AddressEnumerator enumerator(*ontology);
  enumerator.PrecomputeAll();
  const FlatDeweyPool* pool = enumerator.flat_pool();
  ASSERT_NE(pool, nullptr);

  const std::vector<AddressSpan> by_rank = SpansByRank(*ontology, pool);
  const std::span<const std::uint32_t> lcp = pool->rank_lcp();
  ASSERT_EQ(lcp.size(), by_rank.size());
  ASSERT_EQ(lcp[0], 0u);
  for (std::size_t r = 1; r < by_rank.size(); ++r) {
    EXPECT_EQ(lcp[r], DeweyCommonPrefix(pool->components(by_rank[r - 1]),
                                        pool->components(by_rank[r])))
        << "rank " << r;
  }

  // The window-minimum property DRC's insert-resume relies on: for any
  // ranks ra < rb, LCP(addr[ra], addr[rb]) == min(lcp[ra+1 .. rb]).
  util::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t ra = rng.UniformInt(0, by_rank.size() - 1);
    std::size_t rb = rng.UniformInt(0, by_rank.size() - 1);
    if (ra == rb) continue;
    if (ra > rb) std::swap(ra, rb);
    std::uint32_t window_min = lcp[ra + 1];
    for (std::size_t r = ra + 2; r <= rb; ++r) {
      window_min = std::min(window_min, lcp[r]);
    }
    EXPECT_EQ(window_min,
              DeweyCommonPrefix(pool->components(by_rank[ra]),
                                pool->components(by_rank[rb])))
        << "ranks " << ra << ".." << rb;
  }
}

// ---- SIMD kernel equivalence ----------------------------------------

// Every dispatch level must agree with scalar bit for bit on arbitrary
// inputs — lengths straddling the 4- and 8-lane vector widths, shared
// prefixes of every length, and empty addresses. ForceLevel caps at
// what the CPU supports, so on SSE2-only hardware the "avx2" pass
// re-checks sse2 (still a valid equivalence run).
TEST(FlatDeweyPoolSimdTest, AllLevelsMatchScalarKernels) {
  util::Rng rng(29);
  constexpr std::size_t kPairs = 300;
  std::vector<std::vector<std::uint32_t>> lhs(kPairs), rhs(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    const std::size_t len_a = rng.UniformInt(0, 19);
    const std::size_t len_b = rng.UniformInt(0, 19);
    const std::size_t shared =
        std::min(static_cast<std::size_t>(rng.UniformInt(0, 19)),
                 std::min(len_a, len_b));
    for (std::size_t k = 0; k < len_a; ++k) {
      lhs[i].push_back(static_cast<std::uint32_t>(rng.UniformInt(1, 5)));
    }
    rhs[i].assign(lhs[i].begin(), lhs[i].begin() + shared);
    for (std::size_t k = shared; k < len_b; ++k) {
      rhs[i].push_back(static_cast<std::uint32_t>(rng.UniformInt(1, 5)));
    }
  }
  std::vector<std::uint32_t> ranks(257);
  for (auto& r : ranks) {
    r = static_cast<std::uint32_t>(rng.UniformInt(0, 1u << 30));
  }

  simd::ForceLevel(simd::Level::kScalar);
  std::vector<std::size_t> want_lcp(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    want_lcp[i] = DeweyCommonPrefix(lhs[i], rhs[i]);
  }
  std::vector<std::uint64_t> want_keys(ranks.size());
  BuildSortKeys(ranks.data(), 1000, ranks.size(), want_keys.data());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    ASSERT_EQ(want_keys[i], (static_cast<std::uint64_t>(ranks[i]) << 32) |
                                (1000 + i));
  }

  for (simd::Level level : {simd::Level::kSse2, simd::Level::kAvx2}) {
    simd::ForceLevel(level);
    SCOPED_TRACE(simd::LevelName(simd::ActiveLevel()));
    for (std::size_t i = 0; i < kPairs; ++i) {
      EXPECT_EQ(DeweyCommonPrefix(lhs[i], rhs[i]), want_lcp[i])
          << "pair " << i;
    }
    // Odd counts exercise the vector tails.
    for (std::size_t count : {0u, 1u, 7u, 8u, 9u, 31u, 257u}) {
      std::vector<std::uint64_t> keys(count);
      BuildSortKeys(ranks.data(), 42, count, keys.data());
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(keys[i], (static_cast<std::uint64_t>(ranks[i]) << 32) |
                               (42 + i))
            << "count " << count << " i " << i;
      }
    }
  }
  simd::ResetLevel();
}

}  // namespace
}  // namespace ecdr::ontology
