// FlatDeweyPool round-trip tests: the pool built by PrecomputeAll()
// must reproduce the legacy per-concept address vectors exactly — same
// address count, same components, same lexicographic order — because
// DRC's build consumes the pool verbatim and the D-Radix merge order
// (hence the whole ranking) depends on it.

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/drc.h"
#include "ontology/dewey.h"
#include "ontology/generator.h"
#include "tests/fig3_fixture.h"

namespace ecdr::ontology {
namespace {

using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

// Pool spans of `c` must equal the legacy Addresses(c) vectors,
// element for element and in the same order.
void ExpectPoolMatchesLegacy(AddressEnumerator* enumerator,
                             const FlatDeweyPool* pool, ConceptId c) {
  const std::vector<DeweyAddress>& legacy = enumerator->Addresses(c);
  const std::span<const AddressSpan> spans = pool->spans(c);
  ASSERT_EQ(spans.size(), legacy.size()) << "concept " << c;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const std::span<const std::uint32_t> components =
        pool->components(spans[i]);
    EXPECT_TRUE(std::equal(components.begin(), components.end(),
                           legacy[i].begin(), legacy[i].end()))
        << "concept " << c << " address " << i << ": pool "
        << FormatDewey(components) << " vs legacy " << FormatDewey(legacy[i]);
  }
}

TEST(FlatDeweyPoolTest, RoundTripsGeneratedOntologies) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    OntologyGeneratorConfig config;
    config.num_concepts = 600;
    config.seed = seed;
    auto ontology = GenerateOntology(config);
    ASSERT_TRUE(ontology.ok()) << ontology.status().message();

    AddressEnumerator enumerator(*ontology);
    ASSERT_EQ(enumerator.flat_pool(), nullptr);  // Not frozen yet.
    enumerator.PrecomputeAll();
    const FlatDeweyPool* pool = enumerator.flat_pool();
    ASSERT_NE(pool, nullptr) << "seed " << seed;
    ASSERT_EQ(pool->num_concepts(), ontology->num_concepts());

    std::uint64_t total_addresses = 0;
    for (ConceptId c = 0; c < ontology->num_concepts(); ++c) {
      ExpectPoolMatchesLegacy(&enumerator, pool, c);
      total_addresses += pool->spans(c).size();
    }
    EXPECT_EQ(pool->num_addresses(), total_addresses) << "seed " << seed;
  }
}

TEST(FlatDeweyPoolTest, RootHasTheEmptyAddress) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  enumerator.PrecomputeAll();
  const FlatDeweyPool* pool = enumerator.flat_pool();
  ASSERT_NE(pool, nullptr);
  const std::span<const AddressSpan> root_spans =
      pool->spans(fig3.ontology.root());
  ASSERT_EQ(root_spans.size(), 1u);
  EXPECT_EQ(root_spans[0].length, 0u);
  EXPECT_TRUE(pool->components(root_spans[0]).empty());
}

TEST(FlatDeweyPoolTest, MultiParentConceptKeepsAllAddressesSorted) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  enumerator.PrecomputeAll();
  const FlatDeweyPool* pool = enumerator.flat_pool();
  ASSERT_NE(pool, nullptr);
  // J has parents G and F (Table 1): two addresses, lexicographically
  // sorted; R below J doubles them.
  const std::span<const AddressSpan> j = pool->spans(fig3['J']);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(FormatDewey(pool->components(j[0])), "1.1.1.2");
  EXPECT_EQ(FormatDewey(pool->components(j[1])), "3.1.1");
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    const std::span<const AddressSpan> spans = pool->spans(c);
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_FALSE(DeweyLess(pool->components(spans[i]),
                             pool->components(spans[i - 1])))
          << "concept " << c << " out of order at address " << i;
    }
    ExpectPoolMatchesLegacy(&enumerator, pool, c);
  }
}

TEST(FlatDeweyPoolTest, ClearCacheDropsThePool) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator enumerator(fig3.ontology);
  enumerator.PrecomputeAll();
  ASSERT_NE(enumerator.flat_pool(), nullptr);
  enumerator.ClearCache();
  EXPECT_EQ(enumerator.flat_pool(), nullptr);
  // Re-precomputing rebuilds an identical pool.
  enumerator.PrecomputeAll();
  const FlatDeweyPool* pool = enumerator.flat_pool();
  ASSERT_NE(pool, nullptr);
  for (ConceptId c = 0; c < fig3.ontology.num_concepts(); ++c) {
    ExpectPoolMatchesLegacy(&enumerator, pool, c);
  }
}

// The pool path (frozen) and the legacy path (unfrozen) must produce
// identical distances: same inserts in the same order (drc.cc's
// GatherInserts switches between them on flat_pool()).
TEST(FlatDeweyPoolTest, FrozenAndUnfrozenDistancesAgree) {
  const Fig3 fig3 = MakeFig3Ontology();
  AddressEnumerator frozen(fig3.ontology);
  frozen.PrecomputeAll();
  AddressEnumerator unfrozen(fig3.ontology);
  core::Drc pool_drc(fig3.ontology, &frozen);
  core::Drc legacy_drc(fig3.ontology, &unfrozen);

  const std::vector<ConceptId> d = {fig3['F'], fig3['R'], fig3['T'],
                                    fig3['V']};
  const std::vector<ConceptId> q = {fig3['I'], fig3['L'], fig3['U']};
  auto pool_ddq = pool_drc.DocQueryDistance(d, q);
  auto legacy_ddq = legacy_drc.DocQueryDistance(d, q);
  ASSERT_TRUE(pool_ddq.ok() && legacy_ddq.ok());
  EXPECT_EQ(*pool_ddq, *legacy_ddq);
  EXPECT_EQ(*pool_ddq, 7u);  // Example 1: 4 + 2 + 1.

  auto pool_ddd = pool_drc.DocDocDistance(d, q);
  auto legacy_ddd = legacy_drc.DocDocDistance(d, q);
  ASSERT_TRUE(pool_ddd.ok() && legacy_ddd.ok());
  EXPECT_EQ(*pool_ddd, *legacy_ddd);
}

}  // namespace
}  // namespace ecdr::ontology
