// Reconstruction of the paper's Figure 3 ontology, used by the tests
// that replay the paper's worked examples.
//
// The node set A..V and the edge structure are recovered from Table 1's
// Dewey address lists and the narration of Examples 1-4:
//   - A is the root; its children are B(1), C(2), D(3);
//   - I = 1.1.1.1 gives the chain A -> B -> E -> G -> I;
//   - J has two parents (G at 1.1.1.2 and F at 3.1.1);
//   - R = 1.1.1.2.1.1 / 3.1.1.1.1 places O between J and R; U = R.1;
//   - V = 1.1.1.2.2.1.1 / 3.1.1.2.1.1 places P, Q between J and V;
//   - F = 3.1 (child of D), H = 3.1.2 with children K(1), L(2);
//   - T = 3.1.2.1.1.1 places S between K and T.
// Example 1's distances (Ddc(d, I) = 4, Ddc(d, L) = 2, Ddc(d, U) = 1 for
// d = {F, R, T, V}) and Example 4's BFS neighbor sets all hold on this
// reconstruction, which the tests verify.

#ifndef ECDR_TESTS_FIG3_FIXTURE_H_
#define ECDR_TESTS_FIG3_FIXTURE_H_

#include <map>
#include <string>
#include <utility>

#include "ontology/ontology.h"
#include "ontology/ontology_builder.h"

namespace ecdr::testing {

struct Fig3 {
  ontology::Ontology ontology;
  std::map<char, ontology::ConceptId> id;

  ontology::ConceptId operator[](char name) const { return id.at(name); }
};

inline Fig3 MakeFig3Ontology() {
  ontology::OntologyBuilder builder;
  std::map<char, ontology::ConceptId> id;
  for (char c = 'A'; c <= 'V'; ++c) {
    id[c] = builder.AddConcept(std::string(1, c));
  }
  // Edge insertion order defines Dewey child ordinals.
  const std::pair<char, char> edges[] = {
      {'A', 'B'}, {'A', 'C'}, {'A', 'D'},  // A: B=1, C=2, D=3
      {'B', 'E'},                          // B: E=1
      {'E', 'G'},                          // E: G=1
      {'G', 'I'}, {'G', 'J'},              // G: I=1, J=2
      {'I', 'M'}, {'I', 'N'},              // I: M=1, N=2
      {'J', 'O'}, {'J', 'P'},              // J: O=1, P=2
      {'O', 'R'},                          // O: R=1
      {'R', 'U'},                          // R: U=1
      {'P', 'Q'},                          // P: Q=1
      {'Q', 'V'},                          // Q: V=1
      {'D', 'F'},                          // D: F=1
      {'F', 'J'}, {'F', 'H'},              // F: J=1, H=2  (J's 2nd parent)
      {'H', 'K'}, {'H', 'L'},              // H: K=1, L=2
      {'K', 'S'},                          // K: S=1
      {'S', 'T'},                          // S: T=1
  };
  for (const auto& [parent, child] : edges) {
    ECDR_CHECK(builder.AddEdge(id[parent], id[child]).ok());
  }
  util::StatusOr<ontology::Ontology> built = std::move(builder).Build();
  ECDR_CHECK(built.ok());
  return Fig3{std::move(built).value(), std::move(id)};
}

}  // namespace ecdr::testing

#endif  // ECDR_TESTS_FIG3_FIXTURE_H_
