// Snapshot-isolation suite (labelled `concurrency`; runs under TSan in
// CI). Covers the copy-on-write publish path end to end:
//
//   - SnapshotHandle publish/acquire/retire accounting;
//   - pinned generations stay searchable and immutable across publishes
//     (shared segments / shards, ReaderLease on the address cache);
//   - write buffering: batched publishes become visible atomically,
//     the bounded pending delta sheds with kResourceExhausted, Flush()
//     drains it;
//   - copy-on-write economics: a tail append reuses every shard but
//     the tail;
//   - a linearizability-style check: with a writer adding documents
//     concurrently with readers, every search result is bit-identical
//     to the result over SOME published corpus prefix, and the prefixes
//     a reader observes never move backwards.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/drc.h"
#include "core/knds.h"
#include "core/ranking_engine.h"
#include "corpus/generator.h"
#include "corpus/query_gen.h"
#include "index/inverted_index.h"
#include "ontology/dewey.h"
#include "ontology/generator.h"
#include "util/snapshot.h"

namespace ecdr::core {
namespace {

using corpus::DocId;
using ontology::ConceptId;

ontology::Ontology MakeOntology(std::uint64_t seed) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 250;
  config.extra_parent_prob = 0.2;
  config.seed = seed;
  auto ontology = ontology::GenerateOntology(config);
  EXPECT_TRUE(ontology.ok());
  return std::move(ontology).value();
}

corpus::Corpus MakeCorpus(const ontology::Ontology& ontology,
                          std::uint64_t seed, std::uint32_t num_documents) {
  corpus::CorpusGeneratorConfig config;
  config.num_documents = num_documents;
  config.avg_concepts_per_doc = 8;
  config.min_concept_depth = 1;
  config.seed = seed;
  auto corpus = corpus::GenerateCorpus(ontology, config);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

std::vector<ConceptId> DocConcepts(const corpus::Corpus& corpus, DocId d) {
  const auto concepts = corpus.document(d).concepts();
  return {concepts.begin(), concepts.end()};
}

bool SameResults(const std::vector<ScoredDocument>& a,
                 const std::vector<ScoredDocument>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].distance != b[i].distance) return false;
  }
  return true;
}

TEST(SnapshotHandleTest, PublishRetiresAndReadersPinGenerations) {
  util::SnapshotHandle<int> handle;
  handle.Publish(std::make_shared<const int>(0));
  EXPECT_EQ(*handle.Acquire(), 0);

  // A superseded generation nobody holds dies at publish: no retire.
  handle.Publish(std::make_shared<const int>(1));
  EXPECT_EQ(handle.retired_live(), 0u);

  // A pinned generation survives its retirement until released.
  const std::shared_ptr<const int> pinned = handle.Acquire();
  handle.Publish(std::make_shared<const int>(2));
  EXPECT_EQ(*pinned, 1);
  EXPECT_EQ(*handle.Acquire(), 2);
  EXPECT_EQ(handle.retired_live(), 1u);

  const util::SnapshotHandle<int>::Stats stats = handle.stats();
  EXPECT_EQ(stats.published, 3u);
  EXPECT_GE(stats.acquires, 3u);
}

TEST(SnapshotIsolationTest, PinnedGenerationIsImmutableAcrossPublishes) {
  auto engine = RankingEngine::Create(MakeOntology(901));
  const corpus::Corpus source = MakeCorpus(engine->ontology(), 902, 20);
  for (DocId d = 0; d < 10; ++d) {
    ASSERT_TRUE(engine->AddDocument(DocConcepts(source, d)).ok());
  }
  const std::vector<ConceptId> query =
      corpus::GenerateRdsQueries(source, 1, 3, 903).front();

  // Pin the 10-document generation, then keep writing.
  const std::shared_ptr<const EngineSnapshot> pinned = engine->snapshot();
  EXPECT_EQ(pinned->corpus.num_documents(), 10u);
  for (DocId d = 10; d < 20; ++d) {
    ASSERT_TRUE(engine->AddDocument(DocConcepts(source, d)).ok());
  }

  // The pinned generation still sees exactly its 10 documents; the
  // engine's current generation sees all 20.
  EXPECT_EQ(pinned->corpus.num_documents(), 10u);
  EXPECT_EQ(pinned->index.num_indexed_documents(), 10u);
  EXPECT_EQ(engine->snapshot()->corpus.num_documents(), 20u);
  EXPECT_GT(engine->snapshot()->generation, pinned->generation);

  // Searching the pinned generation by hand matches a from-scratch
  // engine over the same 10-document prefix, bit for bit.
  corpus::Corpus prefix(engine->ontology());
  for (DocId d = 0; d < 10; ++d) {
    ASSERT_TRUE(prefix.AddDocument(source.document(d)).ok());
  }
  const index::InvertedIndex prefix_index(prefix);
  ontology::AddressEnumerator enumerator(engine->ontology());
  Drc prefix_drc(engine->ontology(), &enumerator);
  Knds prefix_knds(prefix, prefix_index, &prefix_drc);
  const auto want = prefix_knds.SearchRds(query, 5);
  ASSERT_TRUE(want.ok());

  Drc drc(engine->ontology(), &enumerator);
  Knds knds(pinned->corpus, pinned->index, &drc);
  const auto got = knds.SearchRds(query, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(SameResults(*want, *got));

  // Releasing the pin lets the superseded generations drain.
  const SnapshotStats before = engine->snapshot_stats();
  EXPECT_GE(before.retired_live, 1u);
}

TEST(SnapshotBuilderTest, BatchedPublishesAreAtomicallyVisible) {
  RankingEngineOptions options;
  options.snapshot.publish_batch_size = 3;
  auto engine = RankingEngine::Create(MakeOntology(911), options);
  const corpus::Corpus source = MakeCorpus(engine->ontology(), 912, 7);

  // Two pending adds are invisible to readers...
  ASSERT_TRUE(engine->AddDocument(DocConcepts(source, 0)).ok());
  ASSERT_TRUE(engine->AddDocument(DocConcepts(source, 1)).ok());
  EXPECT_EQ(engine->snapshot()->corpus.num_documents(), 0u);
  EXPECT_EQ(engine->snapshot_stats().pending_documents, 2u);

  // ...until the third completes the batch and all three land at once.
  ASSERT_TRUE(engine->AddDocument(DocConcepts(source, 2)).ok());
  EXPECT_EQ(engine->snapshot()->corpus.num_documents(), 3u);
  EXPECT_EQ(engine->snapshot_stats().pending_documents, 0u);

  // Flush publishes a partial batch on demand.
  ASSERT_TRUE(engine->AddDocument(DocConcepts(source, 3)).ok());
  EXPECT_EQ(engine->snapshot()->corpus.num_documents(), 3u);
  engine->Flush();
  EXPECT_EQ(engine->snapshot()->corpus.num_documents(), 4u);

  // Ids are assigned at enqueue time, in order.
  const auto id = engine->AddDocument(DocConcepts(source, 4));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 4u);
}

TEST(SnapshotBuilderTest, BoundedPendingDeltaShedsWithResourceExhausted) {
  RankingEngineOptions options;
  options.snapshot.publish_batch_size = 0;  // manual publishing
  options.snapshot.max_pending_docs = 3;
  auto engine = RankingEngine::Create(MakeOntology(921), options);
  const corpus::Corpus source = MakeCorpus(engine->ontology(), 922, 5);

  for (DocId d = 0; d < 3; ++d) {
    ASSERT_TRUE(engine->AddDocument(DocConcepts(source, d)).ok());
  }
  EXPECT_EQ(engine->snapshot_stats().pending_documents, 3u);

  // The delta is full: the write is shed, not buffered or dropped.
  const auto shed = engine->AddDocument(DocConcepts(source, 3));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted);

  // Flush drains the buffer; the shed write succeeds on retry with the
  // id it would have had.
  engine->Flush();
  EXPECT_EQ(engine->snapshot()->corpus.num_documents(), 3u);
  const auto retried = engine->AddDocument(DocConcepts(source, 3));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 3u);
}

TEST(SnapshotBuilderTest, TailAppendReusesEveryShardButTheTail) {
  RankingEngineOptions options;
  options.snapshot.target_docs_per_shard = 5;
  auto engine = RankingEngine::Create(MakeOntology(931), options);
  const corpus::Corpus source = MakeCorpus(engine->ontology(), 932, 16);
  for (DocId d = 0; d < source.num_documents(); ++d) {
    ASSERT_TRUE(engine->AddDocument(DocConcepts(source, d)).ok());
  }

  // 16 documents at 5 per shard: three full shards plus the tail.
  const std::shared_ptr<const EngineSnapshot> snap = engine->snapshot();
  ASSERT_EQ(snap->index.num_shards(), 4u);
  EXPECT_EQ(snap->corpus.num_segments(), 4u);

  // The last publish appended into the tail: every sealed shard was
  // shared with the previous generation, only the tail was rebuilt.
  EXPECT_EQ(snap->index.shards_reused(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(snap->index.shard(s).num_indexed_documents(), 5u);
  }
  EXPECT_EQ(snap->index.shard(3).num_indexed_documents(), 1u);
}

TEST(SnapshotBuilderTest, BulkLoadPartitionsIntoRequestedShards) {
  RankingEngineOptions options;
  options.snapshot.num_shards = 4;
  auto engine = RankingEngine::Create(MakeOntology(941), options);
  const corpus::Corpus source = MakeCorpus(engine->ontology(), 942, 22);
  ASSERT_TRUE(engine->AddCorpus(source).ok());

  const std::shared_ptr<const EngineSnapshot> snap = engine->snapshot();
  EXPECT_EQ(snap->corpus.num_documents(), 22u);
  EXPECT_EQ(snap->index.num_shards(), 4u);
  EXPECT_EQ(snap->index.num_indexed_documents(), 22u);
}

// The linearizability-style check of the issue: one writer inserts
// documents 0..N-1 in order (publish-per-add) while readers search the
// same query in a loop. Every result a reader gets must be
// bit-identical to the search over SOME prefix of the insertion order —
// i.e. against some published generation, never a torn mix — and the
// matched prefix length never decreases within a reader (publishes are
// totally ordered and the root swap is atomic).
TEST(SnapshotLinearizabilityTest, ConcurrentSearchesSeeSomePublishedPrefix) {
  constexpr std::uint32_t kDocs = 24;
  constexpr std::uint32_t kK = 5;
  constexpr std::size_t kReaders = 2;

  ontology::Ontology ontology = MakeOntology(951);
  const corpus::Corpus source = MakeCorpus(ontology, 952, kDocs);
  const std::vector<ConceptId> query =
      corpus::GenerateRdsQueries(source, 1, 3, 953).front();

  // Expected result per prefix length, computed single-threaded against
  // a from-scratch index over documents [0, p).
  std::vector<std::vector<ScoredDocument>> expected(kDocs + 1);
  {
    ontology::AddressEnumerator enumerator(ontology);
    corpus::Corpus prefix(ontology);
    for (std::uint32_t p = 0; p <= kDocs; ++p) {
      if (p > 0) {
        ASSERT_TRUE(prefix.AddDocument(source.document(p - 1)).ok());
      }
      const index::InvertedIndex index(prefix);
      Drc drc(ontology, &enumerator);
      Knds knds(prefix, index, &drc);
      auto results = knds.SearchRds(query, kK);
      ASSERT_TRUE(results.ok());
      expected[p] = *std::move(results);
    }
  }

  RankingEngineOptions options;
  options.knds.num_threads = 1;
  auto engine = RankingEngine::Create(std::move(ontology), options);

  std::atomic<bool> writer_done{false};
  std::atomic<std::uint32_t> failures{0};
  std::vector<std::string> reader_errors(kReaders);

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint32_t last_prefix = 0;
      std::uint64_t last_generation = 0;
      while (true) {
        const bool final_pass = writer_done.load(std::memory_order_acquire);
        const std::uint64_t generation = engine->snapshot()->generation;
        const auto results = engine->FindRelevant(query, kK);
        if (!results.ok()) {
          reader_errors[r] = results.status().ToString();
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Find the smallest acceptable prefix (≥ the last one seen)
        // whose expected result matches this one bit for bit.
        std::uint32_t match = kDocs + 1;
        for (std::uint32_t p = last_prefix; p <= kDocs; ++p) {
          if (SameResults(expected[p], *results)) {
            match = p;
            break;
          }
        }
        if (match > kDocs) {
          reader_errors[r] =
              "result matches no published prefix >= " +
              std::to_string(last_prefix);
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        last_prefix = match;
        // Generations a reader observes never move backwards.
        if (generation < last_generation) {
          reader_errors[r] = "generation moved backwards";
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        last_generation = generation;
        if (final_pass) return;
        std::this_thread::yield();
      }
    });
  }

  for (DocId d = 0; d < kDocs; ++d) {
    const auto id = engine->AddDocument(DocConcepts(source, d));
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(*id, d);
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  ASSERT_EQ(failures.load(), 0u)
      << reader_errors[0] << " | " << reader_errors[1];

  // After the writer finishes, a fresh search must see the full corpus.
  const auto final_results = engine->FindRelevant(query, kK);
  ASSERT_TRUE(final_results.ok());
  EXPECT_TRUE(SameResults(expected[kDocs], *final_results));

  const SnapshotStats stats = engine->snapshot_stats();
  EXPECT_EQ(stats.generation, kDocs);  // gen 0 = empty + one per add
  EXPECT_EQ(stats.published, kDocs + 1);
  EXPECT_EQ(stats.pending_documents, 0u);
  EXPECT_GT(stats.acquires, 0u);
}

}  // namespace
}  // namespace ecdr::core
