// Tests for synonym support (Section 1: "heart attack" and "myocardial
// infarction" represent the same ontology concept) and for the OBO
// flat-file importer.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "ontology/obo_io.h"
#include "ontology/ontology_builder.h"
#include "ontology/ontology_io.h"

namespace ecdr::ontology {
namespace {

TEST(SynonymTest, FindByNameResolvesSynonyms) {
  OntologyBuilder builder;
  const ConceptId root = builder.AddConcept("clinical finding");
  const ConceptId mi = builder.AddConcept("myocardial infarction");
  ASSERT_TRUE(builder.AddEdge(root, mi).ok());
  ASSERT_TRUE(builder.AddSynonym(mi, "heart attack").ok());
  ASSERT_TRUE(builder.AddSynonym(mi, "MI").ok());
  const auto ontology = std::move(builder).Build();
  ASSERT_TRUE(ontology.ok());
  EXPECT_EQ(ontology->FindByName("myocardial infarction"), mi);
  EXPECT_EQ(ontology->FindByName("heart attack"), mi);
  EXPECT_EQ(ontology->FindByName("MI"), mi);
  EXPECT_EQ(ontology->synonyms(mi).size(), 2u);
  EXPECT_EQ(ontology->synonyms(root).size(), 0u);
  EXPECT_EQ(ontology->num_synonyms(), 2u);
}

TEST(SynonymTest, CollisionsAreRejected) {
  {
    OntologyBuilder builder;
    const ConceptId root = builder.AddConcept("a");
    const ConceptId b = builder.AddConcept("b");
    ASSERT_TRUE(builder.AddEdge(root, b).ok());
    ASSERT_TRUE(builder.AddSynonym(b, "a").ok());  // Collides with a name.
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
  {
    OntologyBuilder builder;
    const ConceptId root = builder.AddConcept("a");
    const ConceptId b = builder.AddConcept("b");
    ASSERT_TRUE(builder.AddEdge(root, b).ok());
    ASSERT_TRUE(builder.AddSynonym(root, "x").ok());
    ASSERT_TRUE(builder.AddSynonym(b, "x").ok());  // Duplicate synonym.
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
  OntologyBuilder builder;
  builder.AddConcept("a");
  EXPECT_FALSE(builder.AddSynonym(42, "x").ok());  // Unknown concept.
}

TEST(SynonymTest, TextFormatRoundTripsSynonyms) {
  OntologyBuilder builder;
  const ConceptId root = builder.AddConcept("root");
  const ConceptId child = builder.AddConcept("child");
  ASSERT_TRUE(builder.AddEdge(root, child).ok());
  ASSERT_TRUE(builder.AddSynonym(child, "kid with spaces").ok());
  auto original = std::move(builder).Build();
  ASSERT_TRUE(original.ok());

  const std::string path = ::testing::TempDir() + "/synonyms_roundtrip.txt";
  ASSERT_TRUE(SaveOntology(*original, path).ok());
  const auto loaded = LoadOntology(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->FindByName("kid with spaces"), child);
  EXPECT_EQ(loaded->num_synonyms(), 1u);
  std::remove(path.c_str());
}

class OboImportTest : public ::testing::Test {
 protected:
  std::string WriteObo(const std::string& content) {
    const std::string path = ::testing::TempDir() + "/test.obo";
    std::ofstream out(path);
    out << content;
    return path;
  }

  void TearDown() override {
    std::remove((::testing::TempDir() + "/test.obo").c_str());
  }
};

constexpr char kSmallObo[] = R"(format-version: 1.2
! A comment line.

[Term]
id: EX:0001
name: process

[Term]
id: EX:0002
name: metabolic process
synonym: "metabolism" EXACT []
is_a: EX:0001 ! process

[Term]
id: EX:0003
name: growth
is_a: EX:0001

[Term]
id: EX:0004
name: old growth
is_obsolete: true

[Typedef]
id: part_of
name: part of
)";

TEST_F(OboImportTest, ImportsTermsEdgesAndSynonyms) {
  const auto ontology = LoadOboOntology(WriteObo(kSmallObo));
  ASSERT_TRUE(ontology.ok());
  // Virtual root + 3 live terms (the obsolete one is skipped).
  EXPECT_EQ(ontology->num_concepts(), 4u);
  const ConceptId process = ontology->FindByName("EX:0001");
  const ConceptId metabolic = ontology->FindByName("EX:0002");
  ASSERT_NE(process, kInvalidConcept);
  ASSERT_NE(metabolic, kInvalidConcept);
  // Names and synonyms resolve.
  EXPECT_EQ(ontology->FindByName("metabolic process"), metabolic);
  EXPECT_EQ(ontology->FindByName("metabolism"), metabolic);
  EXPECT_EQ(ontology->FindByName("old growth"), kInvalidConcept);
  // Structure: the explicit root hangs under the virtual root.
  const auto parents = ontology->parents(metabolic);
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], process);
  EXPECT_EQ(ontology->depth(metabolic), 2u);  // virtual root -> EX:0001 -> EX:0002
}

TEST_F(OboImportTest, MultipleRootsShareTheVirtualRoot) {
  const auto ontology = LoadOboOntology(WriteObo(R"([Term]
id: A:1
name: alpha

[Term]
id: B:1
name: beta
)"));
  ASSERT_TRUE(ontology.ok());
  EXPECT_EQ(ontology->num_concepts(), 3u);
  EXPECT_EQ(ontology->depth(ontology->FindByName("A:1")), 1u);
  EXPECT_EQ(ontology->depth(ontology->FindByName("B:1")), 1u);
}

TEST_F(OboImportTest, DuplicateNamesBecomeFirstComeSynonyms) {
  const auto ontology = LoadOboOntology(WriteObo(R"([Term]
id: A:1
name: shared name

[Term]
id: B:1
name: shared name
)"));
  ASSERT_TRUE(ontology.ok());
  // The name resolves to the first term; the import does not fail.
  EXPECT_EQ(ontology->FindByName("shared name"),
            ontology->FindByName("A:1"));
}

TEST_F(OboImportTest, RejectsBrokenInputs) {
  EXPECT_FALSE(LoadOboOntology("/nonexistent.obo").ok());
  EXPECT_FALSE(LoadOboOntology(WriteObo("format-version: 1.2\n")).ok());
  EXPECT_FALSE(LoadOboOntology(WriteObo(R"([Term]
id: A:1
is_a: MISSING:1
)")).ok());
  EXPECT_FALSE(LoadOboOntology(WriteObo(R"([Term]
name: no id here
)")).ok());
  // Cycles are caught by the builder.
  EXPECT_FALSE(LoadOboOntology(WriteObo(R"([Term]
id: A:1
is_a: B:1

[Term]
id: B:1
is_a: A:1
)")).ok());
}

TEST_F(OboImportTest, SynonymImportCanBeDisabled) {
  OboImportOptions options;
  options.import_synonyms = false;
  const auto ontology = LoadOboOntology(WriteObo(kSmallObo), options);
  ASSERT_TRUE(ontology.ok());
  EXPECT_EQ(ontology->FindByName("metabolism"), kInvalidConcept);
  EXPECT_EQ(ontology->num_synonyms(), 0u);
}

}  // namespace
}  // namespace ecdr::ontology
