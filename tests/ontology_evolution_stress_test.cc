// Concurrency stress for live ontology evolution (run under tsan via
// the `concurrency` ctest label): reader threads continuously pin
// OntologySnapshots, take AddressEnumerator::ReaderLeases and walk
// address sets / pool spans, while a writer thread evolves the
// ontology — swapping the published snapshot (and with it the frozen
// FlatDeweyPool) out from under them. The shared_ptr snapshot pins
// make every read safe: a lease taken on a superseded snapshot's
// enumerator keeps that enumerator (and its arena) alive until
// released, and lease registration serializes on the enumerator mutex
// so it can never race a ClearCache()/AdoptPrecomputed() check-and-
// clear (the TOCTOU this PR closed).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/ranking_engine.h"
#include "corpus/generator.h"
#include "ontology/dewey.h"
#include "ontology/generator.h"
#include "ontology/ontology_snapshot.h"

namespace ecdr {
namespace {

using ontology::ConceptId;

ontology::Ontology MakeOntology(std::uint64_t seed) {
  ontology::OntologyGeneratorConfig config;
  config.num_concepts = 150;
  config.extra_parent_prob = 0.2;
  config.seed = seed;
  auto result = ontology::GenerateOntology(config);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(OntologyEvolutionStress, LeasedReadersSurviveSnapshotSwaps) {
  const std::uint64_t seed = 23;
  const ontology::Ontology reference = MakeOntology(seed);
  auto engine = core::RankingEngine::Create(MakeOntology(seed));
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 60;
  corpus_config.avg_concepts_per_doc = 10.0;
  corpus_config.seed = seed;
  auto corpus = corpus::GenerateCorpus(reference, corpus_config);
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE(engine->AddCorpus(*corpus).ok());

  constexpr int kReaders = 4;
  constexpr int kSearchers = 2;
  constexpr int kEvolutions = 50;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> searches{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(seed * 100 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        // Pin the current version, lease its enumerator, and read
        // through both the per-concept cache and the flat pool while
        // the writer may be publishing successors.
        const auto snap = engine->ontology_snapshot();
        ontology::AddressEnumerator::ReaderLease lease(snap->addresses());
        std::uniform_int_distribution<ConceptId> dist(
            0, snap->dag().num_concepts() - 1);
        const ConceptId c = dist(rng);
        const auto& addresses = snap->addresses()->Addresses(c);
        ASSERT_FALSE(addresses.empty());
        const ontology::FlatDeweyPool* pool =
            snap->addresses()->flat_pool();
        ASSERT_NE(pool, nullptr);
        ASSERT_EQ(pool->spans(c).size(), addresses.size());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < kSearchers; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(seed * 200 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        std::uniform_int_distribution<ConceptId> dist(
            1, reference.num_concepts() - 1);
        const std::vector<ConceptId> query{dist(rng), dist(rng)};
        const auto results = engine->FindRelevant(query, 5);
        ASSERT_TRUE(results.ok()) << results.status().ToString();
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: a mix of structural (pool-swapping) and retire-only
  // (enumerator-sharing) evolutions, so readers see both hand-offs.
  std::mt19937_64 writer_rng(seed);
  for (int i = 0; i < kEvolutions; ++i) {
    if (i % 5 == 4) {
      std::uniform_int_distribution<ConceptId> dist(
          1, reference.num_concepts() - 1);
      // Engine rejects retiring twice; try ids until one succeeds.
      while (!engine->RetireConcept(dist(writer_rng)).ok()) {
      }
    } else {
      std::uniform_int_distribution<ConceptId> dist(
          0, reference.num_concepts() - 1);
      const auto stats = engine->AddConcept(
          "stress_leaf_" + std::to_string(i), {dist(writer_rng)});
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_FALSE(stats->full_rebuild);
    }
    std::this_thread::yield();
  }

  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(searches.load(), 0u);
  EXPECT_EQ(engine->ontology_stats().version,
            static_cast<std::uint64_t>(kEvolutions));
  // Engine teardown CHECKs that every superseded enumerator drained
  // its leases (the ~AddressEnumerator live_readers()==0 abort), so
  // falling off the end of this test is itself the leak assertion.
}

TEST(OntologyEvolutionStress, LeaseChurnSerializesWithClearCache) {
  const ontology::Ontology dag = MakeOntology(29);
  ontology::AddressEnumerator enumerator(dag);
  enumerator.PrecomputeAll();

  // Threads churn leases while reading; registration takes the same
  // mutex ClearCache holds across its check-and-clear, so once every
  // thread joined the clear below is provably safe (no TOCTOU window
  // where a lease materializes after the zero check).
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < 500; ++i) {
        ontology::AddressEnumerator::ReaderLease lease(&enumerator);
        std::uniform_int_distribution<ConceptId> dist(
            0, dag.num_concepts() - 1);
        const auto& addresses = enumerator.Addresses(dist(rng));
        ASSERT_FALSE(addresses.empty());
        // Moved-from leases must unregister exactly once.
        ontology::AddressEnumerator::ReaderLease moved(std::move(lease));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(enumerator.live_readers(), 0);
  const std::uint64_t generation_before = enumerator.cache_generation();
  enumerator.ClearCache();
  EXPECT_FALSE(enumerator.frozen());
  EXPECT_NE(enumerator.cache_generation(), generation_before);
  enumerator.PrecomputeAll();
  EXPECT_TRUE(enumerator.frozen());
}

}  // namespace
}  // namespace ecdr
