// Table-driven hardening tests: malformed ontology / corpus / OBO input
// must come back as a Status — never a crash, hang, or multi-GiB
// allocation. Each table row is one corruption; a few valid rows prove
// the loaders still accept well-formed input (the tables would pass
// vacuously if the loader rejected everything).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/corpus_io.h"
#include "index/sharded_index.h"
#include "ontology/obo_io.h"
#include "ontology/ontology_builder.h"
#include "ontology/ontology_io.h"
#include "storage/env.h"
#include "storage/image.h"
#include "storage/wal.h"
#include "util/binary_stream.h"

namespace ecdr {
namespace {

std::string WriteTempFile(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

struct TextCase {
  const char* name;
  const char* content;
  bool expect_ok;
};

class OboCorruptionTest : public ::testing::TestWithParam<TextCase> {};

TEST_P(OboCorruptionTest, LoadsOrFailsCleanly) {
  const TextCase& test = GetParam();
  const std::string path =
      WriteTempFile(std::string("obo_") + test.name + ".obo", test.content);
  const auto loaded = ontology::LoadOboOntology(path);
  EXPECT_EQ(loaded.ok(), test.expect_ok)
      << (loaded.ok() ? "unexpectedly accepted"
                      : loaded.status().message());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Corrupt, OboCorruptionTest,
    ::testing::Values(
        TextCase{"valid", "[Term]\nid: A\nname: a\n\n"
                          "[Term]\nid: B\nname: b\nis_a: A\n",
                 true},
        TextCase{"two_node_cycle", "[Term]\nid: A\nis_a: B\n\n"
                                   "[Term]\nid: B\nis_a: A\n",
                 false},
        TextCase{"cycle_beside_root", "[Term]\nid: A\n\n"
                                      "[Term]\nid: B\nis_a: C\n\n"
                                      "[Term]\nid: C\nis_a: B\n",
                 false},
        TextCase{"self_is_a", "[Term]\nid: A\nis_a: A\n", false},
        TextCase{"unknown_is_a", "[Term]\nid: A\nis_a: NOPE\n", false},
        TextCase{"obsolete_is_a",
                 "[Term]\nid: A\n\n"
                 "[Term]\nid: B\nis_obsolete: true\n\n"
                 "[Term]\nid: C\nis_a: B\n",
                 false},
        TextCase{"stanza_without_id", "[Term]\nname: nameless\n", false},
        TextCase{"duplicate_ids", "[Term]\nid: A\n\n[Term]\nid: A\n", false},
        TextCase{"no_terms", "! just a comment\n[Typedef]\nid: part_of\n",
                 false}),
    [](const ::testing::TestParamInfo<TextCase>& info) {
      return info.param.name;
    });

class OntologyTextCorruptionTest : public ::testing::TestWithParam<TextCase> {
};

TEST_P(OntologyTextCorruptionTest, LoadsOrFailsCleanly) {
  const TextCase& test = GetParam();
  const std::string path = WriteTempFile(
      std::string("ontology_") + test.name + ".txt", test.content);
  const auto loaded = ontology::LoadOntology(path);
  EXPECT_EQ(loaded.ok(), test.expect_ok)
      << (loaded.ok() ? "unexpectedly accepted"
                      : loaded.status().message());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Corrupt, OntologyTextCorruptionTest,
    ::testing::Values(
        TextCase{"valid",
                 "ecdr-ontology-v1\nconcepts 2\nroot\nchild\nedges 1\n0 1\n",
                 true},
        TextCase{"missing_header", "concepts 1\nroot\nedges 0\n", false},
        TextCase{"bad_concept_count",
                 "ecdr-ontology-v1\nconcepts lots\nroot\nedges 0\n", false},
        TextCase{"truncated_names",
                 "ecdr-ontology-v1\nconcepts 5\nroot\nchild\n", false},
        TextCase{"missing_edge_count",
                 "ecdr-ontology-v1\nconcepts 1\nroot\n", false},
        TextCase{"truncated_edges",
                 "ecdr-ontology-v1\nconcepts 2\nroot\nchild\nedges 3\n0 1\n",
                 false},
        TextCase{"edge_out_of_range",
                 "ecdr-ontology-v1\nconcepts 2\nroot\nchild\nedges 1\n0 7\n",
                 false},
        TextCase{"self_edge",
                 "ecdr-ontology-v1\nconcepts 2\nroot\nchild\nedges 1\n1 1\n",
                 false},
        TextCase{"duplicate_edge",
                 "ecdr-ontology-v1\nconcepts 2\nroot\nchild\nedges 2\n"
                 "0 1\n0 1\n",
                 false},
        TextCase{"cycle",
                 "ecdr-ontology-v1\nconcepts 3\nroot\na\nb\nedges 3\n"
                 "0 1\n1 2\n2 1\n",
                 false},
        TextCase{"synonym_out_of_range",
                 "ecdr-ontology-v1\nconcepts 2\nroot\nchild\nedges 1\n0 1\n"
                 "synonyms 1\n9 kid\n",
                 false}),
    [](const ::testing::TestParamInfo<TextCase>& info) {
      return info.param.name;
    });

class CorpusTextCorruptionTest : public ::testing::TestWithParam<TextCase> {};

TEST_P(CorpusTextCorruptionTest, LoadsOrFailsCleanly) {
  ontology::OntologyBuilder builder;
  const auto root = builder.AddConcept("root");
  const auto child = builder.AddConcept("child");
  ASSERT_TRUE(builder.AddEdge(root, child).ok());
  const auto ontology = std::move(builder).Build();
  ASSERT_TRUE(ontology.ok());

  const TextCase& test = GetParam();
  const std::string path =
      WriteTempFile(std::string("corpus_") + test.name + ".txt", test.content);
  const auto loaded = corpus::LoadCorpus(*ontology, path);
  EXPECT_EQ(loaded.ok(), test.expect_ok)
      << (loaded.ok() ? "unexpectedly accepted"
                      : loaded.status().message());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Corrupt, CorpusTextCorruptionTest,
    ::testing::Values(
        TextCase{"valid", "ecdr-corpus-v1\ndocuments 1\n2 0 1\n", true},
        TextCase{"missing_header", "documents 1\n1 0\n", false},
        TextCase{"count_mismatch_too_few",
                 "ecdr-corpus-v1\ndocuments 3\n1 0\n", false},
        TextCase{"length_mismatch", "ecdr-corpus-v1\ndocuments 1\n3 0 1\n",
                 false},
        TextCase{"bad_concept_token",
                 "ecdr-corpus-v1\ndocuments 1\n1 banana\n", false},
        TextCase{"concept_out_of_range",
                 "ecdr-corpus-v1\ndocuments 1\n1 42\n", false},
        TextCase{"empty_document", "ecdr-corpus-v1\ndocuments 1\n0\n", false}),
    [](const ::testing::TestParamInfo<TextCase>& info) {
      return info.param.name;
    });

// Binary corruptions are byte surgery on a valid file: flip the magic,
// truncate mid-record, or plant an absurd length prefix. The loaders
// must fail via Status without ballooning memory (the allocation guard
// is clamped to the file's size).

std::string ValidBinaryOntologyBytes() {
  ontology::OntologyBuilder builder;
  const auto root = builder.AddConcept("root");
  const auto child = builder.AddConcept("child");
  EXPECT_TRUE(builder.AddEdge(root, child).ok());
  EXPECT_TRUE(builder.AddSynonym(child, "kid").ok());
  auto built = std::move(builder).Build();
  EXPECT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/ontology_donor.bin";
  EXPECT_TRUE(ontology::SaveOntologyBinary(*built, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

TEST(BinaryOntologyCorruptionTest, TruncationAtEveryPrefixFailsCleanly) {
  const std::string bytes = ValidBinaryOntologyBytes();
  ASSERT_GT(bytes.size(), 16u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::string path = WriteTempFile("ontology_prefix.bin",
                                           bytes.substr(0, len));
    const auto loaded = ontology::LoadOntologyBinary(path);
    EXPECT_FALSE(loaded.ok()) << "prefix length " << len;
    std::remove(path.c_str());
  }
}

TEST(BinaryOntologyCorruptionTest, OversizedLengthPrefixFailsWithoutOom) {
  std::string bytes = ValidBinaryOntologyBytes();
  // The first string length prefix sits right after the u64 magic and
  // u32 concept count. Overwrite it with ~4 GiB.
  ASSERT_GT(bytes.size(), 16u);
  bytes[12] = static_cast<char>(0xFC);
  bytes[13] = static_cast<char>(0xFF);
  bytes[14] = static_cast<char>(0xFF);
  bytes[15] = static_cast<char>(0xFF);
  const std::string path = WriteTempFile("ontology_bigprefix.bin", bytes);
  const auto loaded = ontology::LoadOntologyBinary(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(BinaryOntologyCorruptionTest, BadMagicRejected) {
  std::string bytes = ValidBinaryOntologyBytes();
  bytes[0] ^= 0x5A;
  const std::string path = WriteTempFile("ontology_badmagic.bin", bytes);
  EXPECT_FALSE(ontology::LoadOntologyBinary(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryCorpusCorruptionTest, CorruptionsFailCleanly) {
  ontology::OntologyBuilder builder;
  const auto root = builder.AddConcept("root");
  const auto child = builder.AddConcept("child");
  ASSERT_TRUE(builder.AddEdge(root, child).ok());
  const auto ontology = std::move(builder).Build();
  ASSERT_TRUE(ontology.ok());
  corpus::Corpus corpus(*ontology);
  ASSERT_TRUE(corpus.AddDocument(corpus::Document({0, 1})).ok());
  const std::string donor = ::testing::TempDir() + "/corpus_donor.bin";
  ASSERT_TRUE(corpus::SaveCorpusBinary(corpus, donor).ok());
  std::ifstream in(donor, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::remove(donor.c_str());
  ASSERT_GT(bytes.size(), 16u);

  // Every truncation point.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::string path =
        WriteTempFile("corpus_prefix.bin", bytes.substr(0, len));
    EXPECT_FALSE(corpus::LoadCorpusBinary(*ontology, path).ok())
        << "prefix length " << len;
    std::remove(path.c_str());
  }
  // Oversized vector length prefix (first document, right after the u64
  // magic and u32 document count).
  {
    std::string mutated = bytes;
    mutated[12] = static_cast<char>(0xFC);
    mutated[13] = static_cast<char>(0xFF);
    mutated[14] = static_cast<char>(0xFF);
    mutated[15] = static_cast<char>(0xFF);
    const std::string path = WriteTempFile("corpus_bigprefix.bin", mutated);
    EXPECT_FALSE(corpus::LoadCorpusBinary(*ontology, path).ok());
    std::remove(path.c_str());
  }
  // Out-of-range concept id inside the document payload.
  {
    std::string mutated = bytes;
    mutated[16] = static_cast<char>(0xFF);
    const std::string path = WriteTempFile("corpus_badconcept.bin", mutated);
    EXPECT_FALSE(corpus::LoadCorpusBinary(*ontology, path).ok());
    std::remove(path.c_str());
  }
  // The untouched donor still loads (byte surgery above hit real fields).
  {
    const std::string path = WriteTempFile("corpus_intact.bin", bytes);
    EXPECT_TRUE(corpus::LoadCorpusBinary(*ontology, path).ok());
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Snapshot-image format hardening: the loader must refuse every torn
// prefix (the committed footer is written last, so no strict prefix can
// verify) and never crash, hang, or return silently-wrong state on a
// bit flip anywhere in the file.

ontology::Ontology ImageDonorOntology() {
  ontology::OntologyBuilder builder;
  const auto root = builder.AddConcept("root");
  const auto a = builder.AddConcept("a");
  const auto b = builder.AddConcept("b");
  EXPECT_TRUE(builder.AddEdge(root, a).ok());
  EXPECT_TRUE(builder.AddEdge(root, b).ok());
  auto built = std::move(builder).Build();
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

corpus::Corpus ImageDonorCorpus(const ontology::Ontology& ontology) {
  corpus::Corpus corpus(ontology);
  EXPECT_TRUE(corpus.AddDocument(corpus::Document({0, 1})).ok());
  EXPECT_TRUE(corpus.AddDocument(corpus::Document({1, 2})).ok());
  EXPECT_TRUE(corpus.AddDocument(corpus::Document({2})).ok());
  EXPECT_TRUE(corpus.DeleteDocument(1).ok());  // a tombstone slot
  return corpus;
}

std::string ValidImageBytes(const ontology::Ontology& ontology) {
  const corpus::Corpus corpus = ImageDonorCorpus(ontology);
  const index::ShardedIndex index(corpus);
  storage::FaultyEnv env;
  EXPECT_TRUE(env.CreateDir("/db").ok());
  storage::ImageMeta meta;
  meta.generation = 7;
  meta.last_lsn = 4;
  const auto path =
      storage::WriteImage(env, "/db", meta, corpus, index, nullptr);
  EXPECT_TRUE(path.ok());
  const auto contents = env.ReadFile(*path);
  EXPECT_TRUE(contents.ok());
  return std::string((*contents)->data());
}

/// Writes `bytes` as an image file in a fresh in-memory env and tries
/// to load it.
util::StatusOr<storage::LoadedImage> LoadImageBytes(
    const std::string& bytes, const ontology::Ontology& ontology) {
  storage::FaultyEnv env;
  EXPECT_TRUE(env.CreateDir("/db").ok());
  const std::string path = "/db/" + storage::ImageFileName(7);
  auto file = env.NewWritableFile(path, /*truncate=*/true);
  EXPECT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append(bytes).ok());
  EXPECT_TRUE((*file)->Close().ok());
  return storage::LoadImage(env, path, ontology);
}

TEST(ImageCorruptionTest, TruncationAtEveryByteIsRefused) {
  const ontology::Ontology ontology = ImageDonorOntology();
  const std::string bytes = ValidImageBytes(ontology);
  ASSERT_GT(bytes.size(), 64u);
  // The whole file loads (the sweep below would pass vacuously
  // otherwise)...
  ASSERT_TRUE(LoadImageBytes(bytes, ontology).ok());
  // ...and every strict prefix — every section boundary included — is
  // refused with a clean kDataLoss, because the footer commits last.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto loaded = LoadImageBytes(bytes.substr(0, len), ontology);
    ASSERT_FALSE(loaded.ok()) << "prefix length " << len;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss)
        << "prefix length " << len << ": " << loaded.status().ToString();
  }
}

TEST(ImageCorruptionTest, BitFlipAnywhereNeverYieldsForeignState) {
  const ontology::Ontology ontology = ImageDonorOntology();
  const corpus::Corpus donor = ImageDonorCorpus(ontology);
  const std::string bytes = ValidImageBytes(ontology);
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x01);
    const auto loaded = LoadImageBytes(mutated, ontology);
    if (!loaded.ok()) continue;  // refused: the expected outcome
    // A flip the checksums cannot see (none today — every byte is
    // covered — but tolerated if the format ever grows padding) must
    // decode to exactly the donor state, never to something else.
    ASSERT_EQ(loaded->corpus.num_documents(), donor.num_documents())
        << "flip at " << at;
    for (corpus::DocId d = 0; d < donor.num_documents(); ++d) {
      const auto left = loaded->corpus.document(d).concepts();
      const auto right = donor.document(d).concepts();
      ASSERT_TRUE(std::equal(left.begin(), left.end(), right.begin(),
                             right.end()))
          << "flip at " << at << " document " << d;
    }
  }
}

TEST(ImageCorruptionTest, ValidImageOfForeignOntologyIsRefused) {
  const ontology::Ontology ontology = ImageDonorOntology();
  const std::string bytes = ValidImageBytes(ontology);
  // A one-concept ontology cannot host documents naming concept 2.
  ontology::OntologyBuilder builder;
  builder.AddConcept("lonely-root");
  auto tiny = std::move(builder).Build();
  ASSERT_TRUE(tiny.ok());
  const auto loaded = LoadImageBytes(bytes, *tiny);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kFailedPrecondition)
      << loaded.status().ToString();
}

TEST(StreamByteSizeTest, ReportsRemainingBytes) {
  const std::string path = WriteTempFile("bytesize.bin", "0123456789");
  std::ifstream in(path, std::ios::binary);
  EXPECT_EQ(util::StreamByteSize(in), 10u);
  char c = 0;
  in.read(&c, 1);
  EXPECT_EQ(util::StreamByteSize(in), 9u);
  // The probe must not disturb the read position.
  in.read(&c, 1);
  EXPECT_EQ(c, '1');
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ecdr
