#include "ontology/ontology.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ontology/ontology_builder.h"
#include "tests/fig3_fixture.h"

namespace ecdr::ontology {
namespace {

TEST(OntologyBuilderTest, EmptyOntologyIsRejected) {
  OntologyBuilder builder;
  const auto result = std::move(builder).Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(OntologyBuilderTest, SingleConceptOntology) {
  OntologyBuilder builder;
  const ConceptId root = builder.AddConcept("root");
  const auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->root(), root);
  EXPECT_EQ(result->num_concepts(), 1u);
  EXPECT_EQ(result->num_edges(), 0u);
  EXPECT_EQ(result->depth(root), 0u);
  EXPECT_EQ(result->path_count(root), 1u);
}

TEST(OntologyBuilderTest, DuplicateNameIsRejected) {
  OntologyBuilder builder;
  builder.AddConcept("x");
  builder.AddConcept("x");
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(OntologyBuilderTest, SelfEdgeIsRejected) {
  OntologyBuilder builder;
  const ConceptId a = builder.AddConcept("a");
  EXPECT_FALSE(builder.AddEdge(a, a).ok());
}

TEST(OntologyBuilderTest, UnknownEndpointIsRejected) {
  OntologyBuilder builder;
  const ConceptId a = builder.AddConcept("a");
  EXPECT_FALSE(builder.AddEdge(a, 99).ok());
  EXPECT_FALSE(builder.AddEdge(99, a).ok());
}

TEST(OntologyBuilderTest, DuplicateEdgeIsRejected) {
  OntologyBuilder builder;
  const ConceptId a = builder.AddConcept("a");
  const ConceptId b = builder.AddConcept("b");
  ASSERT_TRUE(builder.AddEdge(a, b).ok());
  ASSERT_TRUE(builder.AddEdge(a, b).ok());  // Detected at Build().
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(OntologyBuilderTest, MultipleRootsAreRejected) {
  OntologyBuilder builder;
  const ConceptId a = builder.AddConcept("a");
  const ConceptId b = builder.AddConcept("b");
  const ConceptId c = builder.AddConcept("c");
  ASSERT_TRUE(builder.AddEdge(a, c).ok());
  ASSERT_TRUE(builder.AddEdge(b, c).ok());  // a and b are both roots.
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(OntologyBuilderTest, CycleIsRejected) {
  OntologyBuilder builder;
  const ConceptId root = builder.AddConcept("root");
  const ConceptId a = builder.AddConcept("a");
  const ConceptId b = builder.AddConcept("b");
  ASSERT_TRUE(builder.AddEdge(root, a).ok());
  ASSERT_TRUE(builder.AddEdge(a, b).ok());
  ASSERT_TRUE(builder.AddEdge(b, a).ok());
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(OntologyBuilderTest, UnreachableConceptIsRejected) {
  OntologyBuilder builder;
  builder.AddConcept("root");
  builder.AddConcept("island");
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(OntologyTest, Fig3Structure) {
  const testing::Fig3 fig3 = testing::MakeFig3Ontology();
  const Ontology& onto = fig3.ontology;
  EXPECT_EQ(onto.num_concepts(), 22u);
  EXPECT_EQ(onto.num_edges(), 22u);
  EXPECT_EQ(onto.root(), fig3['A']);
  EXPECT_EQ(onto.name(fig3['J']), "J");
  EXPECT_EQ(onto.FindByName("J"), fig3['J']);
  EXPECT_EQ(onto.FindByName("nonexistent"), kInvalidConcept);

  // Children in Dewey order.
  const auto a_children = onto.children(fig3['A']);
  ASSERT_EQ(a_children.size(), 3u);
  EXPECT_EQ(a_children[0], fig3['B']);
  EXPECT_EQ(a_children[1], fig3['C']);
  EXPECT_EQ(a_children[2], fig3['D']);

  // J has two parents with the right ordinals: G's child #2, F's child #1.
  const auto j_parents = onto.parents(fig3['J']);
  const auto j_ordinals = onto.parent_ordinals(fig3['J']);
  ASSERT_EQ(j_parents.size(), 2u);
  ASSERT_EQ(j_ordinals.size(), 2u);
  for (std::size_t i = 0; i < j_parents.size(); ++i) {
    if (j_parents[i] == fig3['G']) {
      EXPECT_EQ(j_ordinals[i], 2u);
    } else {
      EXPECT_EQ(j_parents[i], fig3['F']);
      EXPECT_EQ(j_ordinals[i], 1u);
    }
  }
}

TEST(OntologyTest, Fig3Depths) {
  const testing::Fig3 fig3 = testing::MakeFig3Ontology();
  const Ontology& onto = fig3.ontology;
  EXPECT_EQ(onto.depth(fig3['A']), 0u);
  EXPECT_EQ(onto.depth(fig3['D']), 1u);
  EXPECT_EQ(onto.depth(fig3['F']), 2u);
  // J: min(depth via G = 4, via F = 3) = 3.
  EXPECT_EQ(onto.depth(fig3['J']), 3u);
  EXPECT_EQ(onto.depth(fig3['I']), 4u);
  // R: min(6 via G-side, 5 via F-side) = 5.
  EXPECT_EQ(onto.depth(fig3['R']), 5u);
  EXPECT_EQ(onto.depth(fig3['T']), 6u);
  // Deepest min-depth nodes are T, U, V at 6 (V's G-side path has length
  // 7, but depth is the minimum).
  EXPECT_EQ(onto.depth(fig3['U']), 6u);
  EXPECT_EQ(onto.depth(fig3['V']), 6u);
  EXPECT_EQ(onto.max_depth(), 6u);
}

TEST(OntologyTest, Fig3PathCounts) {
  const testing::Fig3 fig3 = testing::MakeFig3Ontology();
  const Ontology& onto = fig3.ontology;
  EXPECT_EQ(onto.path_count(fig3['A']), 1u);
  EXPECT_EQ(onto.path_count(fig3['I']), 1u);
  EXPECT_EQ(onto.path_count(fig3['J']), 2u);  // Via G and via F.
  EXPECT_EQ(onto.path_count(fig3['R']), 2u);
  EXPECT_EQ(onto.path_count(fig3['U']), 2u);
  EXPECT_EQ(onto.path_count(fig3['V']), 2u);
  EXPECT_EQ(onto.path_count(fig3['T']), 1u);
}

}  // namespace
}  // namespace ecdr::ontology
