#include "corpus/corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/corpus_io.h"
#include "corpus/document.h"
#include "corpus/filters.h"
#include "tests/fig3_fixture.h"

namespace ecdr::corpus {
namespace {

using ontology::ConceptId;
using ::ecdr::testing::Fig3;
using ::ecdr::testing::MakeFig3Ontology;

TEST(DocumentTest, SortsAndDeduplicates) {
  const Document doc({5, 3, 5, 1, 3});
  EXPECT_EQ(doc.size(), 3u);
  const std::vector<ConceptId> expected = {1, 3, 5};
  EXPECT_TRUE(std::equal(doc.concepts().begin(), doc.concepts().end(),
                         expected.begin(), expected.end()));
  EXPECT_TRUE(doc.ContainsConcept(3));
  EXPECT_FALSE(doc.ContainsConcept(4));
}

TEST(CorpusTest, AddDocumentValidation) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  EXPECT_FALSE(corpus.AddDocument(Document(std::vector<ConceptId>{})).ok());
  EXPECT_FALSE(corpus.AddDocument(Document({9999})).ok());
  const auto id = corpus.AddDocument(Document({fig3['F'], fig3['R']}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_EQ(corpus.num_documents(), 1u);
  EXPECT_EQ(corpus.document(0).size(), 2u);
}

TEST(CorpusTest, StatsMatchHandComputation) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F'], fig3['R']})).ok());
  ASSERT_TRUE(corpus.AddDocument(
      Document({fig3['F'], fig3['T'], fig3['V'], fig3['L']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['I']})).ok());
  const CorpusStats stats = ComputeCorpusStats(corpus);
  EXPECT_EQ(stats.num_documents, 3u);
  EXPECT_EQ(stats.num_distinct_concepts, 6u);  // F,R,T,V,L,I
  EXPECT_DOUBLE_EQ(stats.avg_concepts_per_document, 7.0 / 3);
  EXPECT_EQ(stats.min_concepts_per_document, 1u);
  EXPECT_EQ(stats.max_concepts_per_document, 4u);
  // cf: F=2, others=1 -> mean 7/6.
  EXPECT_DOUBLE_EQ(stats.cf_mean, 7.0 / 6);
}

TEST(FiltersTest, DepthThresholdRemovesShallowConcepts) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  // F (depth 2) and R (depth 5) with a depth-4 threshold: F is removed.
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F'], fig3['R']})).ok());
  ConceptFilterOptions options;
  options.min_depth = 4;
  options.apply_cf_threshold = false;
  ConceptFilterReport report;
  const auto filtered = ApplyConceptFilters(corpus, options, &report);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(report.concepts_removed_by_depth, 1u);
  EXPECT_EQ(filtered->num_documents(), 1u);
  EXPECT_EQ(filtered->document(0).size(), 1u);
  EXPECT_TRUE(filtered->document(0).ContainsConcept(fig3['R']));
}

TEST(FiltersTest, DocumentsLeftEmptyAreDropped) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['A'], fig3['B']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['R']})).ok());
  ConceptFilterOptions options;
  options.min_depth = 4;
  options.apply_cf_threshold = false;
  ConceptFilterReport report;
  const auto filtered = ApplyConceptFilters(corpus, options, &report);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(report.documents_dropped_empty, 1u);
  EXPECT_EQ(filtered->num_documents(), 1u);
}

TEST(FiltersTest, CfThresholdRemovesVeryCommonConcepts) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  // R appears in 10 documents, the others once: cf(R) is an outlier.
  for (int i = 0; i < 10; ++i) {
    std::vector<ConceptId> concepts = {fig3['R']};
    if (i == 0) concepts.push_back(fig3['T']);
    if (i == 1) concepts.push_back(fig3['V']);
    if (i == 2) concepts.push_back(fig3['U']);
    ASSERT_TRUE(corpus.AddDocument(Document(std::move(concepts))).ok());
  }
  ConceptFilterOptions options;
  options.min_depth = 0;
  options.apply_cf_threshold = true;
  ConceptFilterReport report;
  const auto filtered = ApplyConceptFilters(corpus, options, &report);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(report.concepts_removed_by_cf, 1u);
  for (DocId d = 0; d < filtered->num_documents(); ++d) {
    EXPECT_FALSE(filtered->document(d).ContainsConcept(fig3['R']));
  }
}

TEST(CorpusIoTest, RoundTrip) {
  const Fig3 fig3 = MakeFig3Ontology();
  Corpus corpus(fig3.ontology);
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['F'], fig3['R']})).ok());
  ASSERT_TRUE(corpus.AddDocument(Document({fig3['I']})).ok());
  const std::string path = ::testing::TempDir() + "/corpus_roundtrip.txt";
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  const auto loaded = LoadCorpus(fig3.ontology, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_documents(), 2u);
  EXPECT_EQ(loaded->document(0), corpus.document(0));
  EXPECT_EQ(loaded->document(1), corpus.document(1));
  std::remove(path.c_str());
}

TEST(CorpusIoTest, MissingFileFails) {
  const Fig3 fig3 = MakeFig3Ontology();
  const auto loaded = LoadCorpus(fig3.ontology, "/nonexistent/corpus.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

TEST(CorpusIoTest, CorruptHeaderFails) {
  const Fig3 fig3 = MakeFig3Ontology();
  const std::string path = ::testing::TempDir() + "/corpus_corrupt.txt";
  {
    std::ofstream out(path);
    out << "not-a-corpus\n";
  }
  EXPECT_FALSE(LoadCorpus(fig3.ontology, path).ok());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, WrongConceptCountFails) {
  const Fig3 fig3 = MakeFig3Ontology();
  const std::string path = ::testing::TempDir() + "/corpus_badline.txt";
  {
    std::ofstream out(path);
    out << "ecdr-corpus-v1\ndocuments 1\n3 1 2\n";  // Says 3, lists 2.
  }
  EXPECT_FALSE(LoadCorpus(fig3.ontology, path).ok());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, OutOfOntologyConceptFails) {
  const Fig3 fig3 = MakeFig3Ontology();
  const std::string path = ::testing::TempDir() + "/corpus_badconcept.txt";
  {
    std::ofstream out(path);
    out << "ecdr-corpus-v1\ndocuments 1\n1 5000\n";
  }
  EXPECT_FALSE(LoadCorpus(fig3.ontology, path).ok());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, TruncatedDocumentListFails) {
  const Fig3 fig3 = MakeFig3Ontology();
  const std::string path = ::testing::TempDir() + "/corpus_truncated.txt";
  {
    std::ofstream out(path);
    out << "ecdr-corpus-v1\ndocuments 2\n1 1\n";  // Only one of two docs.
  }
  EXPECT_FALSE(LoadCorpus(fig3.ontology, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ecdr::corpus
