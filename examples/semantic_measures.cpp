// Extension example (the paper's Section 7 future work: "explore other
// semantic distances"): compare how the shortest-path metric the paper
// adopts ranks concept pairs and documents against Wu-Palmer, Resnik
// and Lin.
//
// Build & run:  ./build/examples/semantic_measures

#include <cstdio>
#include <vector>

#include "core/semantic_similarity.h"
#include "corpus/corpus.h"
#include "examples/example_ontology.h"

int main() {
  using ecdr::core::ConceptSimilarity;
  using ecdr::core::SemanticMeasure;
  using ecdr::ontology::ConceptId;

  const ecdr::ontology::Ontology ontology =
      ecdr::examples::MakeMedicalOntology();
  const auto c = [&](const char* name) { return ontology.FindByName(name); };

  // A tiny corpus so the IC-based measures have occurrence statistics.
  ecdr::corpus::Corpus corpus(ontology);
  const auto add = [&](std::vector<ConceptId> concepts) {
    ECDR_CHECK(
        corpus.AddDocument(ecdr::corpus::Document(std::move(concepts))).ok());
  };
  add({c("aortic valve stenosis"), c("congestive heart failure")});
  add({c("type 2 diabetes"), c("hypoglycemia"), c("diabetic nephropathy")});
  add({c("myocardial infarction"), c("atrial fibrillation")});
  add({c("breast cancer"), c("thrombosis")});
  add({c("type 2 diabetes"), c("hypertension"), c("cardiomegaly")});

  const std::vector<std::pair<const char*, const char*>> pairs = {
      {"aortic valve stenosis", "mitral regurgitation"},  // Siblings.
      {"aortic valve stenosis", "thrombosis"},            // Cousins.
      {"aortic valve stenosis", "type 2 diabetes"},       // Far apart.
      {"diabetic nephropathy", "chronic kidney disease"}, // DAG shortcut.
      {"heart disease", "cardiomegaly"},                  // Parent/child.
  };

  std::printf("%-48s %12s %10s %8s %8s\n", "concept pair", "shortest-path",
              "wu-palmer", "resnik", "lin");
  for (const auto& [left, right] : pairs) {
    std::printf("%-22s vs %-22s", left, right);
    for (const SemanticMeasure measure :
         {SemanticMeasure::kShortestPath, SemanticMeasure::kWuPalmer,
          SemanticMeasure::kResnik, SemanticMeasure::kLin}) {
      ConceptSimilarity similarity(ontology, &corpus, measure);
      std::printf(" %10.3f", similarity.Distance(c(left), c(right)));
    }
    std::printf("\n");
  }

  // Document-level comparison: does the choice of measure reorder the
  // nearest neighbors of the cardiology record (doc 0)?
  std::printf("\nnearest corpus documents to doc 0 under each measure:\n");
  for (const SemanticMeasure measure :
       {SemanticMeasure::kShortestPath, SemanticMeasure::kWuPalmer,
        SemanticMeasure::kResnik, SemanticMeasure::kLin}) {
    ConceptSimilarity similarity(ontology, &corpus, measure);
    std::printf("  %-14s:", ecdr::core::SemanticMeasureName(measure));
    for (ecdr::corpus::DocId d = 1; d < corpus.num_documents(); ++d) {
      std::printf(" d%u=%.3f", d,
                  similarity.DocDocDistance(corpus.document(0).concepts(),
                                            corpus.document(d).concepts()));
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe paper adopts shortest-path (with Eq. 3 aggregation) because\n"
      "user studies found no clear effectiveness win for the complex\n"
      "measures, while the simple metric enables the DRC/kNDS machinery.\n");
  return 0;
}
