// Quickstart: the whole public API in one file.
//
//   1. build an ontology (a DAG of is-a edges),
//   2. assemble a corpus of concept-annotated documents,
//   3. compute semantic distances with DRC (document-query Eq. 2,
//      document-document Eq. 3),
//   4. answer RDS and SDS top-k queries with kNDS.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/drc.h"
#include "core/knds.h"
#include "corpus/corpus.h"
#include "examples/example_ontology.h"
#include "index/inverted_index.h"
#include "ontology/dewey.h"

int main() {
  using ecdr::ontology::ConceptId;

  // 1. The ontology. See examples/example_ontology.h; concepts are
  //    looked up by name.
  const ecdr::ontology::Ontology ontology =
      ecdr::examples::MakeMedicalOntology();
  const auto c = [&](const char* name) {
    const ConceptId id = ontology.FindByName(name);
    ECDR_CHECK(id != ecdr::ontology::kInvalidConcept);
    return id;
  };
  std::printf("ontology: %u concepts, %llu is-a edges\n",
              ontology.num_concepts(),
              static_cast<unsigned long long>(ontology.num_edges()));

  // 2. A corpus of "EMRs": each document is just a set of concepts.
  ecdr::corpus::Corpus corpus(ontology);
  const auto add = [&](std::vector<ConceptId> concepts) {
    const auto id = corpus.AddDocument(
        ecdr::corpus::Document(std::move(concepts)));
    ECDR_CHECK(id.ok());
    return *id;
  };
  add({c("aortic valve stenosis"), c("congestive heart failure"),
       c("hypertension")});                                   // doc 0
  add({c("type 2 diabetes"), c("hypoglycemia"),
       c("diabetic nephropathy")});                           // doc 1
  add({c("myocardial infarction"), c("atrial fibrillation"),
       c("cardiomegaly")});                                   // doc 2
  add({c("breast cancer"), c("metastatic breast cancer"),
       c("thrombosis")});                                     // doc 3
  add({c("mitral regurgitation"), c("heart failure"),
       c("type 2 diabetes")});                                // doc 4

  // 3. Distances via DRC. The AddressEnumerator caches Dewey address
  //    sets and is shared across calls.
  ecdr::ontology::AddressEnumerator addresses(ontology);
  ecdr::core::Drc drc(ontology, &addresses);

  const std::vector<ConceptId> query = {c("heart valve finding"),
                                        c("hypertension")};
  for (ecdr::corpus::DocId d = 0; d < corpus.num_documents(); ++d) {
    const auto ddq =
        drc.DocQueryDistance(corpus.document(d).concepts(), query);
    ECDR_CHECK(ddq.ok());
    std::printf("Ddq(doc %u, {heart valve finding, hypertension}) = %llu\n",
                d, static_cast<unsigned long long>(*ddq));
  }
  const auto ddd = drc.DocDocDistance(corpus.document(0).concepts(),
                                      corpus.document(4).concepts());
  ECDR_CHECK(ddd.ok());
  std::printf("Ddd(doc 0, doc 4) = %.3f\n\n", *ddd);

  // 4. Top-k search with kNDS. The inverted index is the only index it
  //    needs; nothing is precomputed over distances.
  ecdr::index::InvertedIndex inverted(corpus);
  ecdr::core::Knds knds(corpus, inverted, &drc);

  std::printf("RDS top-3 for {heart valve finding, hypertension}:\n");
  const auto rds = knds.SearchRds(query, 3);
  ECDR_CHECK(rds.ok());
  for (const auto& result : *rds) {
    std::printf("  doc %u at distance %.0f\n", result.id, result.distance);
  }

  std::printf("SDS top-3 most similar to doc 1 (the diabetes record):\n");
  const auto sds = knds.SearchSds(corpus.document(1), 3);
  ECDR_CHECK(sds.ok());
  for (const auto& result : *sds) {
    std::printf("  doc %u at distance %.3f\n", result.id, result.distance);
  }
  std::printf(
      "(doc 1 itself comes back at distance 0; doc 4 shares the diabetes "
      "branch)\n");
  return 0;
}
