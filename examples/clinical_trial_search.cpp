// RDS scenario from the paper's introduction: a clinical researcher
// screens an EMR database for patients who may qualify for a breast
// cancer trial. The eligibility criteria are a *set of concepts*; the
// researcher does not care what else is in a record (that asymmetry is
// exactly what distinguishes RDS from SDS).
//
// The example also demonstrates kNDS's progressive output (Section 5.3,
// optimization 4): results stream out as soon as they are provably in
// the top-k, before the search finishes.
//
// Build & run:  ./build/examples/clinical_trial_search

#include <cstdio>
#include <string>
#include <vector>

#include "core/drc.h"
#include "core/knds.h"
#include "corpus/corpus.h"
#include "examples/example_ontology.h"
#include "index/inverted_index.h"
#include "util/random.h"

namespace {

using ecdr::ontology::ConceptId;

// Synthesizes patient records biased toward a handful of "phenotypes"
// so the ranking has structure worth looking at.
ecdr::corpus::Corpus MakePatients(const ecdr::ontology::Ontology& ontology,
                                  std::uint32_t count) {
  ecdr::util::Rng rng(2024);
  const auto c = [&](const char* name) { return ontology.FindByName(name); };
  const std::vector<std::vector<ConceptId>> phenotypes = {
      // Oncology.
      {c("breast cancer"), c("invasive ductal carcinoma"),
       c("metastatic breast cancer"), c("thrombosis"), c("embolus")},
      // Cardiology.
      {c("myocardial infarction"), c("congestive heart failure"),
       c("atrial fibrillation"), c("aortic valve stenosis"),
       c("cardiomegaly"), c("hypertension")},
      // Endocrinology.
      {c("type 1 diabetes"), c("type 2 diabetes"), c("hypoglycemia"),
       c("diabetic nephropathy"), c("chronic kidney disease")},
  };
  ecdr::corpus::Corpus corpus(ontology);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto& phenotype =
        phenotypes[rng.UniformInt(0, phenotypes.size() - 1)];
    std::vector<ConceptId> concepts;
    for (ConceptId concept_id : phenotype) {
      if (rng.Bernoulli(0.6)) concepts.push_back(concept_id);
    }
    // Comorbidities from anywhere in the ontology.
    for (int extra = 0; extra < 2; ++extra) {
      if (rng.Bernoulli(0.5)) {
        concepts.push_back(static_cast<ConceptId>(
            rng.UniformInt(1, ontology.num_concepts() - 1)));
      }
    }
    if (concepts.empty()) concepts.push_back(phenotype[0]);
    ECDR_CHECK(
        corpus.AddDocument(ecdr::corpus::Document(std::move(concepts))).ok());
  }
  return corpus;
}

}  // namespace

int main() {
  const ecdr::ontology::Ontology ontology =
      ecdr::examples::MakeMedicalOntology();
  const ecdr::corpus::Corpus corpus = MakePatients(ontology, 200);
  ecdr::index::InvertedIndex inverted(corpus);
  ecdr::ontology::AddressEnumerator addresses(ontology);
  ecdr::core::Drc drc(ontology, &addresses);

  // Trial criteria: metastatic breast cancer with thromboembolic risk.
  const std::vector<ConceptId> criteria = {
      ontology.FindByName("metastatic breast cancer"),
      ontology.FindByName("thrombosis"),
  };
  std::printf(
      "screening %u records for {metastatic breast cancer, thrombosis}\n\n",
      corpus.num_documents());

  ecdr::core::KndsOptions options;
  options.error_threshold = 0.5;
  ecdr::core::Knds knds(corpus, inverted, &drc, options);
  knds.set_progress_callback([](const ecdr::core::ScoredDocument& result) {
    std::printf("  [streamed] patient %u qualifies, distance %.0f\n",
                result.id, result.distance);
  });

  const auto results = knds.SearchRds(criteria, 10);
  ECDR_CHECK(results.ok());

  std::printf("\nfinal top-10 candidates:\n");
  for (const auto& result : *results) {
    std::printf("  patient %-4u distance %.0f  concepts:", result.id,
                result.distance);
    for (ConceptId concept_id : corpus.document(result.id).concepts()) {
      std::printf(" [%s]", ontology.name(concept_id).c_str());
    }
    std::printf("\n");
  }

  const auto& stats = knds.last_stats();
  std::printf(
      "\nsearch cost: %llu BFS levels, %llu concept visits, %llu exact "
      "distances (%llu via DRC), %llu candidates pruned\n",
      static_cast<unsigned long long>(stats.levels),
      static_cast<unsigned long long>(stats.concept_visits),
      static_cast<unsigned long long>(stats.documents_examined),
      static_cast<unsigned long long>(stats.drc_calls),
      static_cast<unsigned long long>(stats.documents_pruned));
  return 0;
}
