// A small hand-written SNOMED-flavored ontology shared by the examples.
//
// It is a DAG (note the two parents of "cardiomegaly" and of "diabetic
// nephropathy"), deep enough for the valid-path rule to matter, and
// small enough to read in one screen.

#ifndef ECDR_EXAMPLES_EXAMPLE_ONTOLOGY_H_
#define ECDR_EXAMPLES_EXAMPLE_ONTOLOGY_H_

#include <string>
#include <utility>
#include <vector>

#include "ontology/ontology.h"
#include "ontology/ontology_builder.h"
#include "util/macros.h"

namespace ecdr::examples {

/// Builds the example ontology. Aborts on internal error (the edge list
/// below is static).
inline ontology::Ontology MakeMedicalOntology() {
  ontology::OntologyBuilder builder;
  const std::vector<std::pair<std::string, std::string>> edges = {
      // clang-format off
      {"clinical finding",        "disorder of body system"},
      {"clinical finding",        "morphologic abnormality"},
      {"disorder of body system", "cardiac finding"},
      {"disorder of body system", "endocrine disorder"},
      {"disorder of body system", "neoplastic disease"},
      {"disorder of body system", "renal disorder"},
      {"cardiac finding",         "heart disease"},
      {"heart disease",           "heart valve finding"},
      {"heart disease",           "myocardial infarction"},
      {"heart disease",           "heart failure"},
      {"heart valve finding",     "aortic valve stenosis"},
      {"heart valve finding",     "mitral regurgitation"},
      {"heart failure",           "congestive heart failure"},
      {"morphologic abnormality", "hypertrophy"},
      {"hypertrophy",             "cardiomegaly"},
      {"heart disease",           "cardiomegaly"},          // 2nd parent
      {"cardiac finding",         "arrhythmia"},
      {"arrhythmia",              "atrial fibrillation"},
      {"arrhythmia",              "bradycardia"},
      {"endocrine disorder",      "diabetes mellitus"},
      {"diabetes mellitus",       "type 1 diabetes"},
      {"diabetes mellitus",       "type 2 diabetes"},
      {"diabetes mellitus",       "diabetic complication"},
      {"diabetic complication",   "diabetic nephropathy"},
      {"renal disorder",          "chronic kidney disease"},
      {"renal disorder",          "diabetic nephropathy"},  // 2nd parent
      {"diabetic complication",   "hypoglycemia"},
      {"neoplastic disease",      "malignant neoplasm"},
      {"malignant neoplasm",      "breast cancer"},
      {"malignant neoplasm",      "lung cancer"},
      {"breast cancer",           "invasive ductal carcinoma"},
      {"breast cancer",           "metastatic breast cancer"},
      {"chronic kidney disease",  "end stage renal disease"},
      {"clinical finding",        "vascular finding"},
      {"vascular finding",        "thrombosis"},
      {"vascular finding",        "embolus"},
      {"vascular finding",        "hypertension"},
      // clang-format on
  };
  // Register each concept on first mention (mention order fixes the
  // Dewey ordinals) and wire the edges.
  std::vector<std::string> names;
  const auto id_of = [&](const std::string& name) -> ontology::ConceptId {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<ontology::ConceptId>(i);
    }
    names.push_back(name);
    return builder.AddConcept(name);
  };
  for (const auto& [parent, child] : edges) {
    const ontology::ConceptId p = id_of(parent);
    const ontology::ConceptId c = id_of(child);
    ECDR_CHECK(builder.AddEdge(p, c).ok());
  }
  auto built = std::move(builder).Build();
  ECDR_CHECK(built.ok());
  return std::move(built).value();
}

}  // namespace ecdr::examples

#endif  // ECDR_EXAMPLES_EXAMPLE_ONTOLOGY_H_
