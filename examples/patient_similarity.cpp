// SDS scenario from the paper's introduction: a physician pulls up the
// patients most similar to the one at the point of care (Eq. 3's
// symmetric inter-patient distance), e.g. to see what treatments worked
// for similar clinical pictures.
//
// Demonstrates:
//   - SDS search over a generated EMR-like corpus,
//   - the error-threshold tradeoff (eps = 0 vs the paper's defaults),
//   - the on-the-fly insertion story: a patient who just arrived is
//     searchable immediately, with no precomputation (Section 1).
//
// Build & run:  ./build/examples/patient_similarity

#include <cstdio>
#include <vector>

#include "core/drc.h"
#include "core/knds.h"
#include "corpus/filters.h"
#include "corpus/generator.h"
#include "index/inverted_index.h"
#include "ontology/generator.h"

int main() {
  // A mid-sized synthetic world: SNOMED-like ontology, PATIENT-like
  // corpus (dense, cohesive records).
  ecdr::ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = 12'000;
  ontology_config.seed = 2014;
  auto ontology = ecdr::ontology::GenerateOntology(ontology_config);
  ECDR_CHECK(ontology.ok());

  ecdr::corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = 300;
  corpus_config.avg_concepts_per_doc = 120;
  corpus_config.cohesion = 0.8;
  corpus_config.clusters_per_doc = 5;
  corpus_config.seed = 7;
  auto generated = ecdr::corpus::GenerateCorpus(*ontology, corpus_config);
  ECDR_CHECK(generated.ok());
  // Drop over-generic concepts exactly as the paper's setup does.
  auto filtered = ecdr::corpus::ApplyConceptFilters(
      *generated, ecdr::corpus::ConceptFilterOptions{}, nullptr);
  ECDR_CHECK(filtered.ok());
  ecdr::corpus::Corpus corpus = std::move(filtered).value();

  ecdr::index::InvertedIndex inverted(corpus);
  ecdr::ontology::AddressEnumerator addresses(*ontology);
  ecdr::core::Drc drc(*ontology, &addresses);

  const ecdr::corpus::DocId patient = 42;
  std::printf("finding the 5 patients most similar to patient %u (%zu "
              "concepts) among %u records\n\n",
              patient, corpus.document(patient).size(),
              corpus.num_documents());

  for (const double eps : {0.0, 0.5}) {
    ecdr::core::KndsOptions options;
    options.error_threshold = eps;
    ecdr::core::Knds knds(corpus, inverted, &drc, options);
    const auto results = knds.SearchSds(corpus.document(patient), 6);
    ECDR_CHECK(results.ok());
    const auto& stats = knds.last_stats();
    std::printf("eps_theta = %.1f  (%.1f ms, %llu DRC calls, %llu examined)\n",
                eps, stats.total_seconds * 1e3,
                static_cast<unsigned long long>(stats.drc_calls),
                static_cast<unsigned long long>(stats.documents_examined));
    for (const auto& result : *results) {
      if (result.id == patient) continue;  // Skip the query patient.
      std::printf("  patient %-4u Ddd = %.4f\n", result.id, result.distance);
    }
    std::printf("\n");
  }

  // A new patient walks in: copy half of patient 42's concepts (a very
  // similar clinical picture), add the record, update the inverted
  // index, search again — the newcomer appears at the top immediately.
  std::vector<ecdr::ontology::ConceptId> newcomer_concepts;
  const auto original = corpus.document(patient).concepts();
  for (std::size_t i = 0; i < original.size(); i += 2) {
    newcomer_concepts.push_back(original[i]);
  }
  const auto newcomer =
      corpus.AddDocument(ecdr::corpus::Document(newcomer_concepts));
  ECDR_CHECK(newcomer.ok());
  inverted.AddDocument(*newcomer, corpus.document(*newcomer));
  std::printf("added patient %u on the fly (no precomputation needed)\n",
              *newcomer);

  ecdr::core::Knds knds(corpus, inverted, &drc);
  const auto results = knds.SearchSds(corpus.document(patient), 3);
  ECDR_CHECK(results.ok());
  for (const auto& result : *results) {
    std::printf("  patient %-4u Ddd = %.4f%s\n", result.id, result.distance,
                result.id == *newcomer ? "   <-- the new arrival" : "");
  }
  return 0;
}
