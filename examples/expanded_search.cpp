// Ontology-based query expansion (the paper's introduction motivates
// this: for the query "aortic valve stenosis", documents containing
// "thrombosis", "embolus" or the more general "heart valve finding"
// should still be considered relevant).
//
// This example compares plain RDS against expanded, weighted RDS on a
// corpus where the best match never contains the literal query concept,
// and shows IC-weighted SDS as a bonus.
//
// Build & run:  ./build/examples/expanded_search

#include <cstdio>
#include <vector>

#include "core/concept_weights.h"
#include "core/drc.h"
#include "core/knds.h"
#include "core/query_expansion.h"
#include "corpus/corpus.h"
#include "examples/example_ontology.h"
#include "index/inverted_index.h"

int main() {
  using ecdr::ontology::ConceptId;

  const ecdr::ontology::Ontology ontology =
      ecdr::examples::MakeMedicalOntology();
  const auto c = [&](const char* name) {
    const ConceptId id = ontology.FindByName(name);
    ECDR_CHECK(id != ecdr::ontology::kInvalidConcept);
    return id;
  };

  ecdr::corpus::Corpus corpus(ontology);
  const auto add = [&](std::vector<ConceptId> concepts) {
    ECDR_CHECK(
        corpus.AddDocument(ecdr::corpus::Document(std::move(concepts))).ok());
  };
  // No document contains "aortic valve stenosis" itself.
  add({c("mitral regurgitation"), c("heart failure")});       // doc 0: sibling
  add({c("thrombosis"), c("embolus")});                       // doc 1: vascular
  add({c("type 1 diabetes"), c("hypoglycemia")});             // doc 2: far away
  add({c("heart valve finding"), c("cardiomegaly")});         // doc 3: parent
  add({c("breast cancer")});                                  // doc 4: far away

  ecdr::index::InvertedIndex inverted(corpus);
  ecdr::ontology::AddressEnumerator addresses(ontology);
  ecdr::core::Drc drc(ontology, &addresses);
  ecdr::core::Knds knds(corpus, inverted, &drc);

  const std::vector<ConceptId> query = {c("aortic valve stenosis")};

  std::printf("plain RDS for {aortic valve stenosis}:\n");
  const auto plain = knds.SearchRds(query, 5);
  ECDR_CHECK(plain.ok());
  for (const auto& result : *plain) {
    std::printf("  doc %u  distance %.3f\n", result.id, result.distance);
  }

  ecdr::core::QueryExpansionOptions options;
  options.radius = 2;
  options.decay = 0.5;
  const auto expanded = ecdr::core::ExpandQuery(ontology, query, options);
  ECDR_CHECK(expanded.ok());
  std::printf("\nexpansion (radius 2, decay 0.5):\n");
  for (const auto& wc : *expanded) {
    std::printf("  %-24s weight %.2f\n",
                ontology.name(wc.concept_id).c_str(), wc.weight);
  }

  std::printf("\nexpanded weighted RDS:\n");
  const auto weighted = knds.SearchRdsWeighted(*expanded, 5);
  ECDR_CHECK(weighted.ok());
  for (const auto& result : *weighted) {
    std::printf("  doc %u  distance %.3f\n", result.id, result.distance);
  }
  std::printf(
      "(the parent-concept document and the valve sibling stay on top; "
      "expansion\n sharpens the margin over the unrelated records)\n");

  // Bonus: information-content-weighted similarity. Rare specific
  // concepts dominate the distance; generic ones barely matter.
  const auto ic = ecdr::core::ConceptWeights::FromInformationContent(
      ontology, corpus);
  const auto similar =
      knds.SearchSdsWeighted(corpus.document(0), ic, 3);
  ECDR_CHECK(similar.ok());
  std::printf("\nIC-weighted SDS around doc 0:\n");
  for (const auto& result : *similar) {
    std::printf("  doc %u  distance %.3f\n", result.id, result.distance);
  }
  return 0;
}
