# Empty compiler generated dependencies file for bench_ablation_knds.
# This may be replaced when dependencies are built.
