file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_knds.dir/bench_ablation_knds.cc.o"
  "CMakeFiles/bench_ablation_knds.dir/bench_ablation_knds.cc.o.d"
  "bench_ablation_knds"
  "bench_ablation_knds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_knds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
