# Empty compiler generated dependencies file for bench_fig7_error_threshold.
# This may be replaced when dependencies are built.
