# Empty compiler generated dependencies file for bench_ablation_drc.
# This may be replaced when dependencies are built.
