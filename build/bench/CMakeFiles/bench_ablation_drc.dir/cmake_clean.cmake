file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_drc.dir/bench_ablation_drc.cc.o"
  "CMakeFiles/bench_ablation_drc.dir/bench_ablation_drc.cc.o.d"
  "bench_ablation_drc"
  "bench_ablation_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
