# Empty dependencies file for bench_ablation_ta.
# This may be replaced when dependencies are built.
