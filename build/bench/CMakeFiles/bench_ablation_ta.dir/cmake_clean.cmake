file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ta.dir/bench_ablation_ta.cc.o"
  "CMakeFiles/bench_ablation_ta.dir/bench_ablation_ta.cc.o.d"
  "bench_ablation_ta"
  "bench_ablation_ta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
