file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_distance_calc.dir/bench_fig6_distance_calc.cc.o"
  "CMakeFiles/bench_fig6_distance_calc.dir/bench_fig6_distance_calc.cc.o.d"
  "bench_fig6_distance_calc"
  "bench_fig6_distance_calc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_distance_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
