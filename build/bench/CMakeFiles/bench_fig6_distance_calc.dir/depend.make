# Empty dependencies file for bench_fig6_distance_calc.
# This may be replaced when dependencies are built.
