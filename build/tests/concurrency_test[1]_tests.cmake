add_test([=[ConcurrencyTest.PerThreadEnginesOverSharedIndexesAgree]=]  /root/repo/build/tests/concurrency_test [==[--gtest_filter=ConcurrencyTest.PerThreadEnginesOverSharedIndexesAgree]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ConcurrencyTest.PerThreadEnginesOverSharedIndexesAgree]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  concurrency_test_TESTS ConcurrencyTest.PerThreadEnginesOverSharedIndexesAgree)
