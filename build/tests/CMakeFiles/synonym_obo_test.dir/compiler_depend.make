# Empty compiler generated dependencies file for synonym_obo_test.
# This may be replaced when dependencies are built.
