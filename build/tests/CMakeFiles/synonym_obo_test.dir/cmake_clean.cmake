file(REMOVE_RECURSE
  "CMakeFiles/synonym_obo_test.dir/synonym_obo_test.cc.o"
  "CMakeFiles/synonym_obo_test.dir/synonym_obo_test.cc.o.d"
  "synonym_obo_test"
  "synonym_obo_test.pdb"
  "synonym_obo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synonym_obo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
