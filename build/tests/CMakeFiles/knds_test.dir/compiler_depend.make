# Empty compiler generated dependencies file for knds_test.
# This may be replaced when dependencies are built.
