file(REMOVE_RECURSE
  "CMakeFiles/knds_test.dir/knds_test.cc.o"
  "CMakeFiles/knds_test.dir/knds_test.cc.o.d"
  "knds_test"
  "knds_test.pdb"
  "knds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
