file(REMOVE_RECURSE
  "CMakeFiles/ta_ranker_test.dir/ta_ranker_test.cc.o"
  "CMakeFiles/ta_ranker_test.dir/ta_ranker_test.cc.o.d"
  "ta_ranker_test"
  "ta_ranker_test.pdb"
  "ta_ranker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ta_ranker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
