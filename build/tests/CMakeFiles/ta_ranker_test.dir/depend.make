# Empty dependencies file for ta_ranker_test.
# This may be replaced when dependencies are built.
