# Empty dependencies file for d_radix_test.
# This may be replaced when dependencies are built.
