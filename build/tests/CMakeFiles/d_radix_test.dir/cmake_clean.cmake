file(REMOVE_RECURSE
  "CMakeFiles/d_radix_test.dir/d_radix_test.cc.o"
  "CMakeFiles/d_radix_test.dir/d_radix_test.cc.o.d"
  "d_radix_test"
  "d_radix_test.pdb"
  "d_radix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d_radix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
