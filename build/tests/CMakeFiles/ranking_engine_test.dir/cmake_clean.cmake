file(REMOVE_RECURSE
  "CMakeFiles/ranking_engine_test.dir/ranking_engine_test.cc.o"
  "CMakeFiles/ranking_engine_test.dir/ranking_engine_test.cc.o.d"
  "ranking_engine_test"
  "ranking_engine_test.pdb"
  "ranking_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
