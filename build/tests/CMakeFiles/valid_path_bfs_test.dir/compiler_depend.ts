# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for valid_path_bfs_test.
