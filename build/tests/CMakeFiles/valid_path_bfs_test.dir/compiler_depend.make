# Empty compiler generated dependencies file for valid_path_bfs_test.
# This may be replaced when dependencies are built.
