file(REMOVE_RECURSE
  "CMakeFiles/valid_path_bfs_test.dir/valid_path_bfs_test.cc.o"
  "CMakeFiles/valid_path_bfs_test.dir/valid_path_bfs_test.cc.o.d"
  "valid_path_bfs_test"
  "valid_path_bfs_test.pdb"
  "valid_path_bfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valid_path_bfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
