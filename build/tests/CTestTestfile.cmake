# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ontology_test[1]_include.cmake")
include("/root/repo/build/tests/dewey_test[1]_include.cmake")
include("/root/repo/build/tests/valid_path_bfs_test[1]_include.cmake")
include("/root/repo/build/tests/distance_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/d_radix_test[1]_include.cmake")
include("/root/repo/build/tests/drc_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/knds_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/ta_ranker_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/semantic_similarity_test[1]_include.cmake")
include("/root/repo/build/tests/weighted_test[1]_include.cmake")
include("/root/repo/build/tests/query_expansion_test[1]_include.cmake")
include("/root/repo/build/tests/ranking_engine_test[1]_include.cmake")
include("/root/repo/build/tests/synonym_obo_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/binary_io_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
