
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/dewey.cc" "src/CMakeFiles/ecdr_ontology.dir/ontology/dewey.cc.o" "gcc" "src/CMakeFiles/ecdr_ontology.dir/ontology/dewey.cc.o.d"
  "/root/repo/src/ontology/distance_oracle.cc" "src/CMakeFiles/ecdr_ontology.dir/ontology/distance_oracle.cc.o" "gcc" "src/CMakeFiles/ecdr_ontology.dir/ontology/distance_oracle.cc.o.d"
  "/root/repo/src/ontology/generator.cc" "src/CMakeFiles/ecdr_ontology.dir/ontology/generator.cc.o" "gcc" "src/CMakeFiles/ecdr_ontology.dir/ontology/generator.cc.o.d"
  "/root/repo/src/ontology/obo_io.cc" "src/CMakeFiles/ecdr_ontology.dir/ontology/obo_io.cc.o" "gcc" "src/CMakeFiles/ecdr_ontology.dir/ontology/obo_io.cc.o.d"
  "/root/repo/src/ontology/ontology.cc" "src/CMakeFiles/ecdr_ontology.dir/ontology/ontology.cc.o" "gcc" "src/CMakeFiles/ecdr_ontology.dir/ontology/ontology.cc.o.d"
  "/root/repo/src/ontology/ontology_builder.cc" "src/CMakeFiles/ecdr_ontology.dir/ontology/ontology_builder.cc.o" "gcc" "src/CMakeFiles/ecdr_ontology.dir/ontology/ontology_builder.cc.o.d"
  "/root/repo/src/ontology/ontology_io.cc" "src/CMakeFiles/ecdr_ontology.dir/ontology/ontology_io.cc.o" "gcc" "src/CMakeFiles/ecdr_ontology.dir/ontology/ontology_io.cc.o.d"
  "/root/repo/src/ontology/valid_path_bfs.cc" "src/CMakeFiles/ecdr_ontology.dir/ontology/valid_path_bfs.cc.o" "gcc" "src/CMakeFiles/ecdr_ontology.dir/ontology/valid_path_bfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
