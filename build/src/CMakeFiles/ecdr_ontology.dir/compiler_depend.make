# Empty compiler generated dependencies file for ecdr_ontology.
# This may be replaced when dependencies are built.
