file(REMOVE_RECURSE
  "libecdr_ontology.a"
)
