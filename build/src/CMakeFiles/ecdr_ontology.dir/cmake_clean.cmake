file(REMOVE_RECURSE
  "CMakeFiles/ecdr_ontology.dir/ontology/dewey.cc.o"
  "CMakeFiles/ecdr_ontology.dir/ontology/dewey.cc.o.d"
  "CMakeFiles/ecdr_ontology.dir/ontology/distance_oracle.cc.o"
  "CMakeFiles/ecdr_ontology.dir/ontology/distance_oracle.cc.o.d"
  "CMakeFiles/ecdr_ontology.dir/ontology/generator.cc.o"
  "CMakeFiles/ecdr_ontology.dir/ontology/generator.cc.o.d"
  "CMakeFiles/ecdr_ontology.dir/ontology/obo_io.cc.o"
  "CMakeFiles/ecdr_ontology.dir/ontology/obo_io.cc.o.d"
  "CMakeFiles/ecdr_ontology.dir/ontology/ontology.cc.o"
  "CMakeFiles/ecdr_ontology.dir/ontology/ontology.cc.o.d"
  "CMakeFiles/ecdr_ontology.dir/ontology/ontology_builder.cc.o"
  "CMakeFiles/ecdr_ontology.dir/ontology/ontology_builder.cc.o.d"
  "CMakeFiles/ecdr_ontology.dir/ontology/ontology_io.cc.o"
  "CMakeFiles/ecdr_ontology.dir/ontology/ontology_io.cc.o.d"
  "CMakeFiles/ecdr_ontology.dir/ontology/valid_path_bfs.cc.o"
  "CMakeFiles/ecdr_ontology.dir/ontology/valid_path_bfs.cc.o.d"
  "libecdr_ontology.a"
  "libecdr_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdr_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
