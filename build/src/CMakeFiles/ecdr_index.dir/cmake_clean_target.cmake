file(REMOVE_RECURSE
  "libecdr_index.a"
)
