# Empty dependencies file for ecdr_index.
# This may be replaced when dependencies are built.
