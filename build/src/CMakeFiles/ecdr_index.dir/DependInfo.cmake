
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/forward_index.cc" "src/CMakeFiles/ecdr_index.dir/index/forward_index.cc.o" "gcc" "src/CMakeFiles/ecdr_index.dir/index/forward_index.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/ecdr_index.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/ecdr_index.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/index/precomputed_postings.cc" "src/CMakeFiles/ecdr_index.dir/index/precomputed_postings.cc.o" "gcc" "src/CMakeFiles/ecdr_index.dir/index/precomputed_postings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecdr_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecdr_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
