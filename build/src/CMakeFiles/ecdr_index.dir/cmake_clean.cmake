file(REMOVE_RECURSE
  "CMakeFiles/ecdr_index.dir/index/forward_index.cc.o"
  "CMakeFiles/ecdr_index.dir/index/forward_index.cc.o.d"
  "CMakeFiles/ecdr_index.dir/index/inverted_index.cc.o"
  "CMakeFiles/ecdr_index.dir/index/inverted_index.cc.o.d"
  "CMakeFiles/ecdr_index.dir/index/precomputed_postings.cc.o"
  "CMakeFiles/ecdr_index.dir/index/precomputed_postings.cc.o.d"
  "libecdr_index.a"
  "libecdr_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdr_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
