file(REMOVE_RECURSE
  "libecdr_corpus.a"
)
