file(REMOVE_RECURSE
  "CMakeFiles/ecdr_corpus.dir/corpus/corpus.cc.o"
  "CMakeFiles/ecdr_corpus.dir/corpus/corpus.cc.o.d"
  "CMakeFiles/ecdr_corpus.dir/corpus/corpus_io.cc.o"
  "CMakeFiles/ecdr_corpus.dir/corpus/corpus_io.cc.o.d"
  "CMakeFiles/ecdr_corpus.dir/corpus/document.cc.o"
  "CMakeFiles/ecdr_corpus.dir/corpus/document.cc.o.d"
  "CMakeFiles/ecdr_corpus.dir/corpus/filters.cc.o"
  "CMakeFiles/ecdr_corpus.dir/corpus/filters.cc.o.d"
  "CMakeFiles/ecdr_corpus.dir/corpus/generator.cc.o"
  "CMakeFiles/ecdr_corpus.dir/corpus/generator.cc.o.d"
  "CMakeFiles/ecdr_corpus.dir/corpus/query_gen.cc.o"
  "CMakeFiles/ecdr_corpus.dir/corpus/query_gen.cc.o.d"
  "libecdr_corpus.a"
  "libecdr_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdr_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
