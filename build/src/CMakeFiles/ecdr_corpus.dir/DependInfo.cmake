
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cc" "src/CMakeFiles/ecdr_corpus.dir/corpus/corpus.cc.o" "gcc" "src/CMakeFiles/ecdr_corpus.dir/corpus/corpus.cc.o.d"
  "/root/repo/src/corpus/corpus_io.cc" "src/CMakeFiles/ecdr_corpus.dir/corpus/corpus_io.cc.o" "gcc" "src/CMakeFiles/ecdr_corpus.dir/corpus/corpus_io.cc.o.d"
  "/root/repo/src/corpus/document.cc" "src/CMakeFiles/ecdr_corpus.dir/corpus/document.cc.o" "gcc" "src/CMakeFiles/ecdr_corpus.dir/corpus/document.cc.o.d"
  "/root/repo/src/corpus/filters.cc" "src/CMakeFiles/ecdr_corpus.dir/corpus/filters.cc.o" "gcc" "src/CMakeFiles/ecdr_corpus.dir/corpus/filters.cc.o.d"
  "/root/repo/src/corpus/generator.cc" "src/CMakeFiles/ecdr_corpus.dir/corpus/generator.cc.o" "gcc" "src/CMakeFiles/ecdr_corpus.dir/corpus/generator.cc.o.d"
  "/root/repo/src/corpus/query_gen.cc" "src/CMakeFiles/ecdr_corpus.dir/corpus/query_gen.cc.o" "gcc" "src/CMakeFiles/ecdr_corpus.dir/corpus/query_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecdr_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
