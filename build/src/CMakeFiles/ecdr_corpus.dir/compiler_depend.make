# Empty compiler generated dependencies file for ecdr_corpus.
# This may be replaced when dependencies are built.
