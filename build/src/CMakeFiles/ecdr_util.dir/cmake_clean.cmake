file(REMOVE_RECURSE
  "CMakeFiles/ecdr_util.dir/util/binary_stream.cc.o"
  "CMakeFiles/ecdr_util.dir/util/binary_stream.cc.o.d"
  "CMakeFiles/ecdr_util.dir/util/random.cc.o"
  "CMakeFiles/ecdr_util.dir/util/random.cc.o.d"
  "CMakeFiles/ecdr_util.dir/util/stats.cc.o"
  "CMakeFiles/ecdr_util.dir/util/stats.cc.o.d"
  "CMakeFiles/ecdr_util.dir/util/status.cc.o"
  "CMakeFiles/ecdr_util.dir/util/status.cc.o.d"
  "CMakeFiles/ecdr_util.dir/util/string_util.cc.o"
  "CMakeFiles/ecdr_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/ecdr_util.dir/util/table_printer.cc.o"
  "CMakeFiles/ecdr_util.dir/util/table_printer.cc.o.d"
  "libecdr_util.a"
  "libecdr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
