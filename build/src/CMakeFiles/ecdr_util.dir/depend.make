# Empty dependencies file for ecdr_util.
# This may be replaced when dependencies are built.
