file(REMOVE_RECURSE
  "libecdr_util.a"
)
