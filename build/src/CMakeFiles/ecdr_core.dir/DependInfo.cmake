
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_distance.cc" "src/CMakeFiles/ecdr_core.dir/core/baseline_distance.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/baseline_distance.cc.o.d"
  "/root/repo/src/core/concept_weights.cc" "src/CMakeFiles/ecdr_core.dir/core/concept_weights.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/concept_weights.cc.o.d"
  "/root/repo/src/core/d_radix.cc" "src/CMakeFiles/ecdr_core.dir/core/d_radix.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/d_radix.cc.o.d"
  "/root/repo/src/core/drc.cc" "src/CMakeFiles/ecdr_core.dir/core/drc.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/drc.cc.o.d"
  "/root/repo/src/core/exhaustive_ranker.cc" "src/CMakeFiles/ecdr_core.dir/core/exhaustive_ranker.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/exhaustive_ranker.cc.o.d"
  "/root/repo/src/core/knds.cc" "src/CMakeFiles/ecdr_core.dir/core/knds.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/knds.cc.o.d"
  "/root/repo/src/core/query_expansion.cc" "src/CMakeFiles/ecdr_core.dir/core/query_expansion.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/query_expansion.cc.o.d"
  "/root/repo/src/core/ranking_engine.cc" "src/CMakeFiles/ecdr_core.dir/core/ranking_engine.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/ranking_engine.cc.o.d"
  "/root/repo/src/core/semantic_similarity.cc" "src/CMakeFiles/ecdr_core.dir/core/semantic_similarity.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/semantic_similarity.cc.o.d"
  "/root/repo/src/core/ta_ranker.cc" "src/CMakeFiles/ecdr_core.dir/core/ta_ranker.cc.o" "gcc" "src/CMakeFiles/ecdr_core.dir/core/ta_ranker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecdr_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecdr_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecdr_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
