file(REMOVE_RECURSE
  "libecdr_core.a"
)
