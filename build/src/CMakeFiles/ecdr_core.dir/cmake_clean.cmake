file(REMOVE_RECURSE
  "CMakeFiles/ecdr_core.dir/core/baseline_distance.cc.o"
  "CMakeFiles/ecdr_core.dir/core/baseline_distance.cc.o.d"
  "CMakeFiles/ecdr_core.dir/core/concept_weights.cc.o"
  "CMakeFiles/ecdr_core.dir/core/concept_weights.cc.o.d"
  "CMakeFiles/ecdr_core.dir/core/d_radix.cc.o"
  "CMakeFiles/ecdr_core.dir/core/d_radix.cc.o.d"
  "CMakeFiles/ecdr_core.dir/core/drc.cc.o"
  "CMakeFiles/ecdr_core.dir/core/drc.cc.o.d"
  "CMakeFiles/ecdr_core.dir/core/exhaustive_ranker.cc.o"
  "CMakeFiles/ecdr_core.dir/core/exhaustive_ranker.cc.o.d"
  "CMakeFiles/ecdr_core.dir/core/knds.cc.o"
  "CMakeFiles/ecdr_core.dir/core/knds.cc.o.d"
  "CMakeFiles/ecdr_core.dir/core/query_expansion.cc.o"
  "CMakeFiles/ecdr_core.dir/core/query_expansion.cc.o.d"
  "CMakeFiles/ecdr_core.dir/core/ranking_engine.cc.o"
  "CMakeFiles/ecdr_core.dir/core/ranking_engine.cc.o.d"
  "CMakeFiles/ecdr_core.dir/core/semantic_similarity.cc.o"
  "CMakeFiles/ecdr_core.dir/core/semantic_similarity.cc.o.d"
  "CMakeFiles/ecdr_core.dir/core/ta_ranker.cc.o"
  "CMakeFiles/ecdr_core.dir/core/ta_ranker.cc.o.d"
  "libecdr_core.a"
  "libecdr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
