# Empty dependencies file for ecdr_core.
# This may be replaced when dependencies are built.
