# Empty dependencies file for clinical_trial_search.
# This may be replaced when dependencies are built.
