file(REMOVE_RECURSE
  "CMakeFiles/clinical_trial_search.dir/clinical_trial_search.cpp.o"
  "CMakeFiles/clinical_trial_search.dir/clinical_trial_search.cpp.o.d"
  "clinical_trial_search"
  "clinical_trial_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinical_trial_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
