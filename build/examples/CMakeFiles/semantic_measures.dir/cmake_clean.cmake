file(REMOVE_RECURSE
  "CMakeFiles/semantic_measures.dir/semantic_measures.cpp.o"
  "CMakeFiles/semantic_measures.dir/semantic_measures.cpp.o.d"
  "semantic_measures"
  "semantic_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
