# Empty compiler generated dependencies file for semantic_measures.
# This may be replaced when dependencies are built.
