file(REMOVE_RECURSE
  "CMakeFiles/patient_similarity.dir/patient_similarity.cpp.o"
  "CMakeFiles/patient_similarity.dir/patient_similarity.cpp.o.d"
  "patient_similarity"
  "patient_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patient_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
