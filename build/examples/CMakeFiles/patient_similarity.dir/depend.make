# Empty dependencies file for patient_similarity.
# This may be replaced when dependencies are built.
