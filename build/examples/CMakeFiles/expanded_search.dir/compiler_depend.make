# Empty compiler generated dependencies file for expanded_search.
# This may be replaced when dependencies are built.
