file(REMOVE_RECURSE
  "CMakeFiles/expanded_search.dir/expanded_search.cpp.o"
  "CMakeFiles/expanded_search.dir/expanded_search.cpp.o.d"
  "expanded_search"
  "expanded_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expanded_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
