# Empty dependencies file for ecdr_query.
# This may be replaced when dependencies are built.
