file(REMOVE_RECURSE
  "CMakeFiles/ecdr_query.dir/ecdr_query.cc.o"
  "CMakeFiles/ecdr_query.dir/ecdr_query.cc.o.d"
  "ecdr_query"
  "ecdr_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdr_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
