# Empty compiler generated dependencies file for ecdr_stats.
# This may be replaced when dependencies are built.
