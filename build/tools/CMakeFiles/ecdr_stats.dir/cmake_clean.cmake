file(REMOVE_RECURSE
  "CMakeFiles/ecdr_stats.dir/ecdr_stats.cc.o"
  "CMakeFiles/ecdr_stats.dir/ecdr_stats.cc.o.d"
  "ecdr_stats"
  "ecdr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
