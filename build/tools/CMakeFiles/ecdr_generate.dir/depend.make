# Empty dependencies file for ecdr_generate.
# This may be replaced when dependencies are built.
