file(REMOVE_RECURSE
  "CMakeFiles/ecdr_generate.dir/ecdr_generate.cc.o"
  "CMakeFiles/ecdr_generate.dir/ecdr_generate.cc.o.d"
  "ecdr_generate"
  "ecdr_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdr_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
